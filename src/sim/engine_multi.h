// Multi-session run engine.
//
// The multi-session algorithms own their SessionChannels (they move queue
// contents and re-allocate), so the system interface is coarser than the
// single-session one: the engine feeds one arrivals vector per slot and the
// system does enqueue + allocate + serve. The engine owns all scoring:
// per-variable local change counting, declared-total (global) change
// counting, utilization, and delay aggregation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "obs/telemetry/shard.h"
#include "obs/tracer.h"
#include "sim/run_result.h"
#include "sim/session_channels.h"
#include "state/checkpoint.h"
#include "state/serializer.h"
#include "util/assert.h"
#include "util/fixed_point.h"
#include "util/types.h"

namespace bwalloc {

class ChurnDriver;  // sim/churn.h

// One nonzero (or explicitly-listed) arrival for the sparse step interface.
struct SessionArrival {
  std::int64_t session = 0;
  Bits bits = 0;
};

// Column-compressed arrival trace: per slot, only the sessions that
// actually submit bits, sorted ascending by session id. This is the input
// format of the event-driven engine — at a million sessions a dense
// per-slot vector is 8 MB of zeros per slot.
struct SparseMultiTrace {
  std::int64_t sessions = 0;
  Time horizon = 0;
  // slot_offsets has horizon + 1 entries; slot t's arrivals are
  // arrivals[slot_offsets[t] .. slot_offsets[t + 1]).
  std::vector<std::int64_t> slot_offsets;
  std::vector<SessionArrival> arrivals;

  std::span<const SessionArrival> Slot(Time t) const {
    const auto lo =
        static_cast<std::size_t>(slot_offsets[static_cast<std::size_t>(t)]);
    const auto hi = static_cast<std::size_t>(
        slot_offsets[static_cast<std::size_t>(t) + 1]);
    return std::span<const SessionArrival>(arrivals.data() + lo, hi - lo);
  }

  // Exact sparse view of a dense trace set (zeros dropped).
  static SparseMultiTrace FromDense(
      const std::vector<std::vector<Bits>>& traces);

  // Structural invariants: offsets monotone and spanning, sessions in
  // range and ascending within each slot, bits non-negative.
  void Validate() const;
};

class MultiSessionSystem {
 public:
  virtual ~MultiSessionSystem() = default;

  // Process one slot: enqueue arrivals (one entry per session), update
  // allocations, serve.
  virtual void Step(Time now, std::span<const Bits> arrivals) = 0;

  virtual const SessionChannels& channels() const = 0;

  // Completed stages (RESET count): the Lemma 13 offline lower bound.
  virtual std::int64_t stages() const = 0;

  // Combined algorithm only: completed global stages.
  virtual std::int64_t global_stages() const { return 0; }

  // Total bandwidth the algorithm has *reserved* this slot (the quantity
  // whose transitions are "global changes" for the combined algorithm).
  virtual Bandwidth DeclaredTotalBandwidth() const = 0;

  // Bandwidth allocated outside the per-session channels (the combined
  // algorithm's global overflow channel); counted into utilization.
  virtual Bandwidth ExtraAllocatedBandwidth() const { return {}; }
  virtual Bits ExtraQueuedBits() const { return 0; }
  virtual Bits ExtraDeliveredBits() const { return 0; }
  // Delays of bits delivered by the extra channel; nullptr if none.
  virtual const DelayHistogram* ExtraDelayHistogram() const { return nullptr; }

  // Attach a tracer for the system's internal events (stage certification,
  // RESETs, overflow shunts). Default: ignore — tracing stays optional for
  // every implementation.
  virtual void SetTracer(const Tracer& /*tracer*/) {}

  // Attach a live telemetry shard for the system's internal hot-path
  // instruments (timer-wheel scan costs, fault-lane counters). Default:
  // ignore — telemetry stays optional for every implementation, and it is
  // on the nondeterministic lane: it must never change behaviour.
  virtual void SetTelemetry(telemetry::RuntimeShard* /*shard*/) {}

  // --- event-driven stepping (optional) ------------------------------------
  // True when the system implements StepSparse. Systems without it (e.g.
  // the fault-lane adapter, which must drive every lane every slot) are
  // run by the event engine through a dense-materialization fallback.
  virtual bool SupportsSparseStep() const { return false; }

  // Process one slot given only the sessions with nonzero demand, sorted
  // ascending by session id. Must be behaviorally identical to Step() with
  // the equivalent dense vector — the differential harness
  // (tests/engine_equivalence_test.cc) holds implementations to byte-equal
  // traces. A system instance must be driven through exactly one of
  // Step()/StepSparse() for its whole life, never a mix.
  virtual void StepSparse(Time /*now*/,
                          std::span<const SessionArrival> /*arrivals*/) {
    BW_REQUIRE(false, "StepSparse: not implemented for this system");
  }

  // Test hook: shifts the system's scheduled wakeups (phase boundaries,
  // REDUCE leases) one slot late in the sparse path. The differential
  // harness's negative control proves such an off-by-one is *caught* by
  // the byte-identity gate. No effect on the dense path.
  virtual void PerturbEventWakeupsForTest() {}

  // --- dynamic session churn (optional) ------------------------------------
  // True when the system supports mid-run session join/depart: an active-set
  // mask over its channel slots, queue drop + rate zeroing + lease
  // cancellation on departure. The engines refuse churn plans on systems
  // that opt out.
  virtual bool SupportsChurn() const { return false; }

  // `session` becomes active (admitted and its start slot arrived): unmask
  // it and, if the run has started, allocate its baseline regular rate.
  virtual void OnSessionJoin(Time /*now*/, std::int64_t /*session*/) {
    BW_REQUIRE(false, "OnSessionJoin: not implemented for this system");
  }

  // `session` leaves (departure, or pre-run deactivation of a slot that
  // has not been admitted yet): drop its queued bits, zero its committed
  // rates, cancel its pending leases/wakeups. Returns the bits dropped.
  virtual Bits OnSessionDepart(Time /*now*/, std::int64_t /*session*/) {
    BW_REQUIRE(false, "OnSessionDepart: not implemented for this system");
    return 0;
  }

  // --- checkpoint/restore (optional) ---------------------------------------
  // True when SaveState/LoadState round-trip the system's full state
  // (channels, stage machinery, leases, fault lanes). The engine refuses
  // to checkpoint systems that opt out.
  virtual bool SupportsCheckpoint() const { return false; }
  virtual void SaveState(StateWriter& /*w*/) const {
    BW_REQUIRE(false, "SaveState: not implemented for this system");
  }
  virtual void LoadState(StateReader& /*r*/) {
    BW_REQUIRE(false, "LoadState: not implemented for this system");
  }
};

// Counters the event engine reports about its own sparsity; purely
// informational (never part of MultiRunResult, so results stay comparable
// across engines). `touched_session_slots` is the denominator for the
// ns/slot-per-active-session bench metric.
struct EventEngineStats {
  std::int64_t touched_session_slots = 0;  // dirty-session visits, all slots
  std::int64_t arrival_events = 0;         // sparse arrival records fed
  bool dense_fallback = false;  // system lacked sparse support
};

struct MultiEngineOptions {
  Time utilization_scan_window = 0;  // 0 disables the Lemma 5 scan
  Time drain_slots = 0;
  // Structured event tracing; also handed to the system via SetTracer.
  Tracer tracer;
  MetricsRegistry* metrics = nullptr;
  PhaseProfile* profile = nullptr;
  // Filled by RunMultiSessionEvent when non-null; ignored by the naive
  // engine.
  EventEngineStats* event_stats = nullptr;
  // Optional live telemetry shard (nondeterministic lane); also handed to
  // the system via SetTelemetry. Null = no live metrics.
  telemetry::RuntimeShard* telemetry = nullptr;
  // Checkpoint capture / crash injection / resume (state/checkpoint.h).
  CheckpointOptions checkpoint;
  // Session churn (sim/churn.h): when non-null, the engine runs the
  // driver's lifecycle processing at the start of every slot and masks
  // arrivals by the live active set. Requires system.SupportsChurn(). The
  // driver's state rides inside the engine checkpoint.
  ChurnDriver* churn = nullptr;
};

// `traces[i]` is the arrival trace of session i; all traces must have equal
// length.
MultiRunResult RunMultiSession(const std::vector<std::vector<Bits>>& traces,
                               MultiSessionSystem& system,
                               const MultiEngineOptions& options = {});

// Event-driven engine: same scoring, same trace bytes, same result as
// RunMultiSession on the dense expansion of `sparse`, but each slot costs
// O(sessions touched) instead of O(k). Systems with SupportsSparseStep()
// are stepped sparsely; others get a dense-materialization fallback (exact,
// but O(k-ish) inside the system itself).
MultiRunResult RunMultiSessionEvent(const SparseMultiTrace& sparse,
                                    MultiSessionSystem& system,
                                    const MultiEngineOptions& options = {});

}  // namespace bwalloc
