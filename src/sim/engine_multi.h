// Multi-session run engine.
//
// The multi-session algorithms own their SessionChannels (they move queue
// contents and re-allocate), so the system interface is coarser than the
// single-session one: the engine feeds one arrivals vector per slot and the
// system does enqueue + allocate + serve. The engine owns all scoring:
// per-variable local change counting, declared-total (global) change
// counting, utilization, and delay aggregation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "obs/metrics.h"
#include "obs/stopwatch.h"
#include "obs/tracer.h"
#include "sim/run_result.h"
#include "sim/session_channels.h"
#include "util/fixed_point.h"
#include "util/types.h"

namespace bwalloc {

class MultiSessionSystem {
 public:
  virtual ~MultiSessionSystem() = default;

  // Process one slot: enqueue arrivals (one entry per session), update
  // allocations, serve.
  virtual void Step(Time now, std::span<const Bits> arrivals) = 0;

  virtual const SessionChannels& channels() const = 0;

  // Completed stages (RESET count): the Lemma 13 offline lower bound.
  virtual std::int64_t stages() const = 0;

  // Combined algorithm only: completed global stages.
  virtual std::int64_t global_stages() const { return 0; }

  // Total bandwidth the algorithm has *reserved* this slot (the quantity
  // whose transitions are "global changes" for the combined algorithm).
  virtual Bandwidth DeclaredTotalBandwidth() const = 0;

  // Bandwidth allocated outside the per-session channels (the combined
  // algorithm's global overflow channel); counted into utilization.
  virtual Bandwidth ExtraAllocatedBandwidth() const { return {}; }
  virtual Bits ExtraQueuedBits() const { return 0; }
  virtual Bits ExtraDeliveredBits() const { return 0; }
  // Delays of bits delivered by the extra channel; nullptr if none.
  virtual const DelayHistogram* ExtraDelayHistogram() const { return nullptr; }

  // Attach a tracer for the system's internal events (stage certification,
  // RESETs, overflow shunts). Default: ignore — tracing stays optional for
  // every implementation.
  virtual void SetTracer(const Tracer& /*tracer*/) {}
};

struct MultiEngineOptions {
  Time utilization_scan_window = 0;  // 0 disables the Lemma 5 scan
  Time drain_slots = 0;
  // Structured event tracing; also handed to the system via SetTracer.
  Tracer tracer;
  MetricsRegistry* metrics = nullptr;
  PhaseProfile* profile = nullptr;
};

// `traces[i]` is the arrival trace of session i; all traces must have equal
// length.
MultiRunResult RunMultiSession(const std::vector<std::vector<Bits>>& traces,
                               MultiSessionSystem& system,
                               const MultiEngineOptions& options = {});

}  // namespace bwalloc
