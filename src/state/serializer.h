// Binary state serialization primitives for checkpoint/restore.
//
// StateWriter/StateReader encode a flat little-endian byte stream:
// fixed-width integers, length-prefixed strings, and 4-byte section tags.
// The format is deliberately boring — no varints, no alignment, no
// back-references — so a round-trip is exactly reproducible and a reader
// failure always means real corruption or version skew, never a parser
// subtlety. Every class that participates in checkpointing exposes
// SaveState(StateWriter&) / LoadState(StateReader&) built on these.
//
// This header is standalone (standard library only) so that util/, sim/,
// core/, and net/ headers can all include it without a dependency cycle;
// the envelope layer (magic/version/CRC, file I/O) lives in
// state/checkpoint.h and links as the bwalloc_state library.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

namespace bwalloc {

// Thrown by StateReader on any malformed payload: truncation, a section
// tag mismatch, or an out-of-range scalar. The message names the failure;
// the checkpoint layer wraps it with the source file name.
class StateFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class StateWriter {
 public:
  // 4-character section tag (e.g. "SCH1"); pairs with StateReader::Tag.
  void Tag(const char* tag) { buf_.append(tag, 4); }

  void U8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void Bool(bool v) { U8(v ? 1 : 0); }

  void U32(std::uint32_t v) {
    char b[4];
    for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    buf_.append(b, 4);
  }

  void U64(std::uint64_t v) {
    char b[8];
    for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
    buf_.append(b, 8);
  }

  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }

  void Str(std::string_view s) {
    U64(s.size());
    buf_.append(s.data(), s.size());
  }

  const std::string& bytes() const { return buf_; }
  std::string TakeBytes() { return std::move(buf_); }

 private:
  std::string buf_;
};

class StateReader {
 public:
  explicit StateReader(std::string_view data) : data_(data) {}

  void Tag(const char* tag) {
    const std::string_view got = Raw(4);
    if (std::memcmp(got.data(), tag, 4) != 0) {
      throw StateFormatError(
          std::string("state section tag mismatch: expected '") +
          std::string(tag, 4) + "', found '" + std::string(got) + "'");
    }
  }

  std::uint8_t U8() {
    return static_cast<std::uint8_t>(Raw(1)[0]);
  }

  bool Bool() {
    const std::uint8_t v = U8();
    if (v > 1) throw StateFormatError("state bool out of range");
    return v != 0;
  }

  std::uint32_t U32() {
    const std::string_view b = Raw(4);
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<unsigned char>(b[i]))
           << (8 * i);
    }
    return v;
  }

  std::uint64_t U64() {
    const std::string_view b = Raw(8);
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(b[i]))
           << (8 * i);
    }
    return v;
  }

  std::int64_t I64() { return static_cast<std::int64_t>(U64()); }

  // U64 with an upper bound, for element counts: a corrupt count must fail
  // here, not as a bad_alloc when the caller resizes a vector to it.
  std::uint64_t Count(std::uint64_t max) {
    const std::uint64_t v = U64();
    if (v > max) throw StateFormatError("state element count out of range");
    return v;
  }

  std::string Str() {
    const std::uint64_t n = Count(remaining());
    return std::string(Raw(n));
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

  void ExpectEnd() const {
    if (!AtEnd()) {
      throw StateFormatError("state payload has trailing bytes");
    }
  }

 private:
  std::string_view Raw(std::uint64_t n) {
    if (n > remaining()) throw StateFormatError("state payload truncated");
    const std::string_view out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
};

}  // namespace bwalloc
