#include "state/checkpoint.h"

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "obs/telemetry/hub.h"
#include "util/json_writer.h"

namespace bwalloc {

namespace {

std::array<std::uint32_t, 256> MakeCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

[[noreturn]] void Reject(const std::string& source, const std::string& why) {
  throw CheckpointError("checkpoint " + source + ": " + why);
}

}  // namespace

std::uint32_t Crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = MakeCrcTable();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string WrapCheckpoint(std::string_view payload) {
  StateWriter w;
  w.U32(kCheckpointVersion);
  w.U64(payload.size());
  w.U32(Crc32(payload));
  std::string out(kCheckpointMagic);
  out += w.bytes();
  out += payload;
  return out;
}

std::string UnwrapCheckpoint(std::string_view blob,
                             const std::string& source) {
  const std::size_t header = kCheckpointMagic.size() + 4 + 8 + 4;
  if (blob.size() < header) {
    Reject(source, "truncated header (" + std::to_string(blob.size()) +
                       " bytes, need " + std::to_string(header) + ")");
  }
  if (blob.substr(0, kCheckpointMagic.size()) != kCheckpointMagic) {
    Reject(source, "bad magic (not a checkpoint file)");
  }
  StateReader r(blob.substr(kCheckpointMagic.size()));
  const std::uint32_t version = r.U32();
  if (version != kCheckpointVersion) {
    Reject(source, "unsupported version " + std::to_string(version) +
                       " (this build reads version " +
                       std::to_string(kCheckpointVersion) + ")");
  }
  const std::uint64_t payload_len = r.U64();
  const std::uint32_t crc = r.U32();
  if (payload_len != r.remaining()) {
    Reject(source, "payload length mismatch (header says " +
                       std::to_string(payload_len) + ", file holds " +
                       std::to_string(r.remaining()) + " — torn write?)");
  }
  std::string payload(blob.substr(header));
  if (Crc32(payload) != crc) {
    Reject(source, "CRC mismatch (corrupted payload)");
  }
  return payload;
}

void WriteCheckpointFile(const std::string& path, std::string_view payload) {
  const std::string blob = WrapCheckpoint(payload);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) Reject(tmp, "cannot open for writing");
    out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    out.flush();
    if (!out) Reject(tmp, "write failed");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) Reject(path, "atomic rename failed: " + ec.message());
}

std::string ReadCheckpointFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) Reject(path, "cannot open (missing or unreadable)");
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return UnwrapCheckpoint(blob, path);
}

void CheckpointMeta::Save(StateWriter& w) const {
  w.Tag("META");
  w.Str(kind);
  w.I64(next_slot);
  w.I64(trace_events);
  w.I64(journal_bytes);
  w.I64(committed_total_raw);
}

void CheckpointMeta::Load(StateReader& r) {
  r.Tag("META");
  kind = r.Str();
  next_slot = r.I64();
  trace_events = r.I64();
  journal_bytes = r.I64();
  committed_total_raw = r.I64();
}

CheckpointMeta ReadCheckpointMeta(std::string_view blob,
                                  const std::string& source) {
  const std::string payload = UnwrapCheckpoint(blob, source);
  CheckpointMeta meta;
  try {
    StateReader r(payload);
    meta.Load(r);
  } catch (const StateFormatError& e) {
    Reject(source, e.what());
  }
  return meta;
}

void PublishCheckpoint(const CheckpointOptions& options,
                       std::string_view payload) {
  const std::int64_t t0 = options.telemetry != nullptr
                              ? telemetry::MonotonicNowNs()
                              : 0;
  if (!options.dir.empty()) {
    WriteCheckpointFile(options.dir + "/" + options.stem + ".ckpt", payload);
  }
  if (options.capture != nullptr) {
    *options.capture = WrapCheckpoint(payload);
  }
  if (options.telemetry != nullptr) {
    options.telemetry->Add(telemetry::Counter::kCheckpoints);
    options.telemetry->Record(telemetry::Histo::kCheckpointPublishNs,
                              telemetry::MonotonicNowNs() - t0);
  }
}

std::string CheckpointDebugJson(std::string_view blob,
                                const std::string& source) {
  const std::string payload = UnwrapCheckpoint(blob, source);
  CheckpointMeta meta;
  try {
    StateReader r(payload);
    meta.Load(r);
  } catch (const StateFormatError& e) {
    Reject(source, e.what());
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("magic");
  w.Value(std::string(kCheckpointMagic.substr(0, 7)));
  w.Key("version");
  w.Value(static_cast<std::int64_t>(kCheckpointVersion));
  w.Key("payload_bytes");
  w.Value(static_cast<std::int64_t>(payload.size()));
  w.Key("crc32");
  w.Value(static_cast<std::int64_t>(Crc32(payload)));
  w.Key("kind");
  w.Value(meta.kind);
  w.Key("next_slot");
  w.Value(meta.next_slot);
  w.Key("trace_events");
  w.Value(meta.trace_events);
  w.Key("journal_bytes");
  w.Value(meta.journal_bytes);
  w.Key("committed_total_raw");
  w.Value(meta.committed_total_raw);
  w.EndObject();
  return w.str();
}

}  // namespace bwalloc
