// Versioned checkpoint envelope and crash-injection plumbing.
//
// A checkpoint is an opaque StateWriter payload wrapped in a fixed
// envelope:
//
//   magic "BWCKPT1\n" (8) | version u32 | payload length u64 |
//   CRC-32 of payload u32 | payload bytes
//
// The envelope is what makes corruption *detectable*: truncation, a torn
// mid-write file, a stale version, or a flipped bit all fail UnwrapCheckpoint
// with a CheckpointError naming the source, never a silent mis-restore.
// File writes are atomic (temp file + rename) so a crash during
// checkpointing leaves either the previous checkpoint or a complete new
// one, never a torn file at the published path.
//
// Every payload starts with a CheckpointMeta section written by the engine
// that captured it: what kind of run it was, the slot to resume from, and
// the trace-journal position (event count + byte offset) so the caller can
// truncate the journal back to the exact capture point and replay it into
// a fresh auditor. CheckpointDebugJson renders the envelope + meta as one
// JSON object for `bwsim checkpoint-dump`.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "obs/telemetry/shard.h"
#include "state/serializer.h"
#include "util/types.h"

namespace bwalloc {

// A checkpoint blob or file that cannot be used: missing, truncated, bad
// magic, wrong version, or CRC mismatch. what() names the source. CLI
// front ends map this to exit code 2 (a usage-level error: the operator
// pointed --resume-from at a bad file).
class CheckpointError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

// Deterministic injected crash (--crash-at-slot / a runner CrashPlan).
// CLI front ends map this to exit code 3 so scripts can distinguish an
// intentional crash from a real failure.
class CrashInjected : public std::runtime_error {
 public:
  explicit CrashInjected(Time slot)
      : std::runtime_error("injected crash after slot " +
                           std::to_string(slot)),
        slot_(slot) {}
  Time slot() const { return slot_; }

 private:
  Time slot_;
};

inline constexpr std::string_view kCheckpointMagic = "BWCKPT1\n";
inline constexpr std::uint32_t kCheckpointVersion = 1;

// CRC-32 (IEEE 802.3 polynomial, the zlib convention).
std::uint32_t Crc32(std::string_view data);

// Adds the envelope around a serialized payload.
std::string WrapCheckpoint(std::string_view payload);

// Validates the envelope and returns the payload. Throws CheckpointError
// (message includes `source`) on any defect.
std::string UnwrapCheckpoint(std::string_view blob, const std::string& source);

// Atomically writes `payload` (wrapped) to `path`: the bytes land in
// `path + ".tmp"` first and are renamed over `path` only once complete.
// Throws CheckpointError on I/O failure.
void WriteCheckpointFile(const std::string& path, std::string_view payload);

// Reads and unwraps a checkpoint file. Throws CheckpointError naming the
// file when it is missing or fails validation.
std::string ReadCheckpointFile(const std::string& path);

// Header section every engine writes first into a checkpoint payload.
struct CheckpointMeta {
  std::string kind;  // "single" | "multi" | "multi-event"
  Time next_slot = 0;               // first slot the resumed run executes
  std::int64_t trace_events = 0;    // journal events emitted at capture
  std::int64_t journal_bytes = 0;   // journal byte offset at capture
  std::int64_t committed_total_raw = 0;  // cumulative allocated Q16 units

  void Save(StateWriter& w) const;
  void Load(StateReader& r);
};

// One-line JSON summary (envelope + meta) of a wrapped checkpoint blob.
// Throws CheckpointError (naming `source`) when the blob is invalid.
std::string CheckpointDebugJson(std::string_view blob,
                                const std::string& source);

// Validates a wrapped blob and returns just its meta header — what a
// recovering caller needs (journal truncation point, resume slot) before
// deciding to run the engine at all. Throws CheckpointError naming
// `source` on an invalid envelope or an unreadable meta section.
CheckpointMeta ReadCheckpointMeta(std::string_view blob,
                                  const std::string& source);

// Engine-side checkpoint/crash/resume controls, shared by the single- and
// multi-session engines (a member of their options structs).
struct CheckpointOptions {
  // Capture a checkpoint after every slot t with (t + 1) % every == 0;
  // 0 disables checkpointing entirely.
  Time every = 0;
  // Throw CrashInjected immediately after finishing slot `crash_at`
  // (after any checkpoint due that slot); kNoTime disables.
  Time crash_at = kNoTime;
  // File mode: write each capture atomically to <dir>/<stem>.ckpt
  // (rolling — each capture replaces the last). Empty = no file.
  std::string dir;
  std::string stem = "run";
  // In-memory mode: each capture overwrites *capture with the wrapped
  // blob (tests and the supervised batch runner restore from here).
  std::string* capture = nullptr;
  // Resume: restore engine + system state from this wrapped blob before
  // running; the engine starts at the checkpoint's next_slot.
  const std::string* resume = nullptr;
  // Negative control: after a restore, nudge one restored allocation
  // shadow by 1 raw unit. A correct differential harness must catch the
  // resulting spurious alloc-change bytes.
  bool perturb_restore_for_test = false;
  // Live telemetry lane: PublishCheckpoint counts each publish and records
  // its wall-clock cost here. Never touches the checkpoint bytes.
  telemetry::RuntimeShard* telemetry = nullptr;

  bool enabled() const { return every > 0 || resume != nullptr; }
};

// Wraps a serialized payload once and delivers it to every destination the
// options configure (the rolling <dir>/<stem>.ckpt file and/or *capture).
void PublishCheckpoint(const CheckpointOptions& options,
                       std::string_view payload);

}  // namespace bwalloc
