// Session path model.
//
// Section 1: "it takes time to setup the modified bandwidth allocation …
// in today's ATM switches it would normally require the invocation of
// software in every switch on the session path, which would lengthen the
// response time even more and consume resources at the switch. Clearly,
// this would translate also to the price of a bandwidth change."
//
// A NetworkPath is the chain of switches a session traverses; it yields
// the two quantities that matter to the allocation layer: how long a
// renegotiation takes to become effective end-to-end (the sum of the
// per-switch signalling latencies) and what one change costs (the sum of
// the per-switch prices).
#pragma once

#include <numeric>
#include <string>
#include <vector>

#include "util/assert.h"
#include "util/types.h"

namespace bwalloc {

struct PathHop {
  std::string name;
  Time signaling_slots = 1;   // software invocation time at this switch
  double change_cost = 1.0;   // price of touching this switch
};

class NetworkPath {
 public:
  NetworkPath() = default;
  explicit NetworkPath(std::vector<PathHop> hops) : hops_(std::move(hops)) {
    for (const PathHop& h : hops_) {
      BW_REQUIRE(h.signaling_slots >= 0, "hop signalling must be >= 0");
      BW_REQUIRE(h.change_cost >= 0, "hop cost must be >= 0");
    }
  }

  // A uniform path of `hops` identical switches.
  static NetworkPath Uniform(std::int64_t hops, Time signaling_slots,
                             double change_cost) {
    BW_REQUIRE(hops >= 0, "hop count must be >= 0");
    std::vector<PathHop> v;
    for (std::int64_t i = 0; i < hops; ++i) {
      v.push_back({"sw" + std::to_string(i), signaling_slots, change_cost});
    }
    return NetworkPath(std::move(v));
  }

  std::int64_t hops() const { return static_cast<std::int64_t>(hops_.size()); }

  // End-to-end renegotiation latency: every switch on the path must commit.
  Time SignalingLatency() const {
    Time total = 0;
    for (const PathHop& h : hops_) total += h.signaling_slots;
    return total;
  }

  double ChangeCost() const {
    double total = 0;
    for (const PathHop& h : hops_) total += h.change_cost;
    return total;
  }

  const std::vector<PathHop>& hops_list() const { return hops_; }

 private:
  std::vector<PathHop> hops_;
};

}  // namespace bwalloc
