// Unreliable control plane for the multi-session algorithms.
//
// PR 2 gave the single-session allocator a fault-injected signalling path
// (net/faults.h); the multi-session engines still assumed every
// per-session renegotiation commits instantly and in full. This header
// closes that gap:
//
//   * PerSessionPlan derives session i's private fault lane from one
//     shared FaultPlan seed via SplitMix64, so lane i's loss/denial/jitter
//     stream is a pure function of (plan seed, i, attempt index) — it does
//     not depend on how many sessions exist or on the --jobs value.
//   * RobustMultiSessionAdapter wraps any MultiSessionSystem (phased,
//     continuous, combined) behind a shared NetworkPath with one
//     FaultySignalingChannel per session. Each lane runs the same
//     stop-and-wait / timeout-as-loss / capped-exponential-backoff /
//     RESET-fallback state machine as the single-session
//     RobustSignalingAdapter, independently per session.
//
// Degraded-mode discipline: the wrapped algorithm always advances,
// fault-free, on its own (phantom) channels — it is the control model
// whose per-session intents the lanes try to commit. The adapter owns the
// *real* SessionChannels: bits are enqueued there and served at the last
// committed per-session allocation. The inner system's trace events
// (phase boundaries, stage certifications, global RESETs) are suppressed
// because they describe allocations that may never have committed; the
// adapter instead emits per-session signal fault/recovery events so the
// auditor can suspend its delay and change-budget monitors exactly during
// each session's degraded window and assert the lane re-converges within
// the retry bound (kSignalRecover).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "net/faults.h"
#include "net/path.h"
#include "obs/tracer.h"
#include "sim/engine_multi.h"
#include "sim/run_result.h"
#include "sim/session_channels.h"
#include "state/serializer.h"
#include "util/fixed_point.h"
#include "util/types.h"

namespace bwalloc {

// Session i's private fault lane: same rates, a seed derived from the
// shared plan seed and the session index only.
FaultPlan PerSessionPlan(const FaultPlan& plan, std::int64_t session);

// Retry/degradation policy, applied independently per session lane.
struct RobustMultiOptions {
  Time timeout_margin = 2;    // extra slots past WorstCaseResponse
  Time initial_backoff = 1;   // slots before the first re-attempt
  Time max_backoff = 64;      // exponential backoff cap
  std::int64_t fallback_after_denials = 3;  // K consecutive denials
  Bits fallback_bandwidth = 0;  // per-session RESET drain rate, typically B_A

  void Validate() const {
    BW_REQUIRE(timeout_margin >= 1, "RobustMultiOptions: timeout_margin >= 1");
    BW_REQUIRE(initial_backoff >= 1,
               "RobustMultiOptions: initial_backoff >= 1");
    BW_REQUIRE(max_backoff >= initial_backoff,
               "RobustMultiOptions: max_backoff >= initial_backoff");
    BW_REQUIRE(fallback_after_denials >= 1,
               "RobustMultiOptions: fallback_after_denials >= 1");
    BW_REQUIRE(fallback_bandwidth > 0,
               "RobustMultiOptions: fallback_bandwidth must be > 0");
  }
};

class RobustMultiSessionAdapter final : public MultiSessionSystem {
 public:
  RobustMultiSessionAdapter(std::unique_ptr<MultiSessionSystem> inner,
                            const NetworkPath& path, const FaultPlan& plan,
                            const RobustMultiOptions& options);

  void Step(Time now, std::span<const Bits> arrivals) override;

  // The adapter's channels are the real data plane; the inner system's
  // channels only model what the algorithm believes it has committed.
  const SessionChannels& channels() const override { return channels_; }

  std::int64_t stages() const override { return inner_->stages(); }
  std::int64_t global_stages() const override {
    return inner_->global_stages();
  }
  Bandwidth DeclaredTotalBandwidth() const override {
    return inner_->DeclaredTotalBandwidth();
  }
  // Extra* stay at their zero defaults on purpose: the combined
  // algorithm's global channel drains *phantom* copies of the arrivals
  // inside the control model; the real bits stay in the adapter's
  // channels, so forwarding the inner counters would double-count them
  // and break conservation.

  void SetTracer(const Tracer& tracer) override;

  // Live telemetry: per-lane signal counters, ack RTT, backoff episodes,
  // and the degraded-lane recovery-debt gauge. Nondeterministic lane only.
  void SetTelemetry(telemetry::RuntimeShard* shard) override;

  // Merged over all sessions (exact sum of per_session_fault_stats()).
  FaultStats fault_stats() const;
  std::vector<FaultStats> per_session_fault_stats() const;

  bool in_fallback(std::int64_t session) const;
  std::int64_t sessions() const { return sessions_; }

  // --- dynamic churn --------------------------------------------------------
  // Churn passes through to the control model; the adapter additionally
  // parks the departing session's lane (cancelling its outstanding request,
  // fallback drain, and any open degraded window) and drops the real
  // queues. A rejoining session restarts its lane from the parked state.
  bool SupportsChurn() const override { return inner_->SupportsChurn(); }
  void OnSessionJoin(Time now, std::int64_t session) override;
  Bits OnSessionDepart(Time now, std::int64_t session) override;

  // --- checkpoint/restore ---------------------------------------------------
  bool SupportsCheckpoint() const override {
    return inner_->SupportsCheckpoint();
  }

  void SaveState(StateWriter& w) const override {
    w.Tag("RMA1");
    inner_->SaveState(w);
    channels_.SaveState(w);
    w.U64(lanes_.size());
    for (const Lane& lane : lanes_) {
      lane.channel.SaveState(w);
      w.Bool(lane.outstanding);
      w.I64(lane.deadline);
      w.I64(lane.next_attempt_at);
      w.I64(lane.backoff);
      w.I64(lane.consecutive_denials);
      w.Bool(lane.fallback);
      w.I64(lane.last_want.raw());
      w.Bool(lane.have_last_want);
      w.I64(lane.seen_acks);
      w.I64(lane.seen_nacks);
      w.I64(lane.timeouts);
      w.I64(lane.retries);
      w.I64(lane.fallbacks);
      w.Bool(lane.degraded);
      w.Bool(lane.active);
    }
  }

  void LoadState(StateReader& r) override {
    r.Tag("RMA1");
    inner_->LoadState(r);
    channels_.LoadState(r);
    const std::uint64_t n = r.U64();
    if (n != lanes_.size()) {
      throw StateFormatError("fault lane count mismatch in checkpoint");
    }
    for (Lane& lane : lanes_) {
      lane.channel.LoadState(r);
      lane.outstanding = r.Bool();
      lane.deadline = r.I64();
      lane.next_attempt_at = r.I64();
      lane.backoff = r.I64();
      lane.consecutive_denials = r.I64();
      lane.fallback = r.Bool();
      lane.last_want = Bandwidth::FromRaw(r.I64());
      lane.have_last_want = r.Bool();
      lane.seen_acks = r.I64();
      lane.seen_nacks = r.I64();
      lane.timeouts = r.I64();
      lane.retries = r.I64();
      lane.fallbacks = r.I64();
      lane.degraded = r.Bool();
      lane.active = r.Bool();
    }
    degraded_count_ = 0;
    for (const Lane& lane : lanes_) {
      if (lane.degraded) ++degraded_count_;
    }
  }

 private:
  // One independent stop-and-wait retry state machine per session.
  struct Lane {
    explicit Lane(FaultySignalingChannel ch) : channel(std::move(ch)) {}

    FaultySignalingChannel channel;
    bool outstanding = false;
    Time deadline = 0;
    Time next_attempt_at = 0;
    Time backoff = 1;
    std::int64_t consecutive_denials = 0;
    bool fallback = false;
    Bandwidth last_want;
    bool have_last_want = false;
    std::int64_t seen_acks = 0;
    std::int64_t seen_nacks = 0;
    std::int64_t timeouts = 0;
    std::int64_t retries = 0;
    std::int64_t fallbacks = 0;
    bool degraded = false;  // open fault window; closed by kSignalRecover
    bool active = true;     // churn mask; parked lanes are skipped entirely
    // Live-lane only (not checkpointed): slot of the last request, for
    // ack RTT telemetry. A resume restarts the measurement.
    Time request_slot = -1;
  };

  void StepLane(Time now, std::int64_t i, Bandwidth intended);

  std::unique_ptr<MultiSessionSystem> inner_;
  RobustMultiOptions opts_;
  std::int64_t sessions_;
  SessionChannels channels_;
  std::vector<Lane> lanes_;
  Tracer tracer_;  // disabled unless SetTracer was called
  // Lanes currently inside an open degraded window — the run's fault
  // recovery debt, maintained incrementally and exported as a gauge.
  std::int64_t degraded_count_ = 0;
  telemetry::RuntimeShard* telemetry_ = nullptr;
};

}  // namespace bwalloc
