// Cell framing (the ATM layer under the paper's model).
//
// The paper's trends section points at ATM: bandwidth there is carried in
// fixed 53-byte cells with a 48-byte payload. Framing a bit stream into
// cells costs (a) header overhead — 5/53 of the wire rate — and
// (b) padding — the last cell of a burst is sent partially full. This
// layer converts application bits to wire cells and back, so experiments
// can report the *effective* utilization an allocation achieves after
// framing, and how the allocation algorithms' guarantees translate from
// bits to cells.
#pragma once

#include <cstdint>

#include "util/assert.h"
#include "util/fixed_point.h"
#include "util/types.h"

namespace bwalloc {

struct CellFormat {
  Bits payload_bits = 384;  // ATM: 48 bytes
  Bits header_bits = 40;    // ATM: 5 bytes

  Bits cell_bits() const { return payload_bits + header_bits; }

  void Validate() const {
    BW_REQUIRE(payload_bits >= 1, "cell payload must be >= 1 bit");
    BW_REQUIRE(header_bits >= 0, "cell header must be >= 0 bits");
  }

  // Cells needed to carry `bits` of payload (last cell padded).
  std::int64_t CellsFor(Bits bits) const {
    BW_REQUIRE(bits >= 0, "CellsFor: negative bits");
    return (bits + payload_bits - 1) / payload_bits;
  }

  // Wire bits consumed carrying `bits` of payload.
  Bits WireBitsFor(Bits bits) const { return CellsFor(bits) * cell_bits(); }

  // Wire bandwidth needed to carry `payload_rate` of application payload at
  // steady state (header expansion only; padding depends on burst shape).
  Bandwidth WireRateFor(Bandwidth payload_rate) const {
    return Bandwidth::FromRaw(static_cast<std::int64_t>(
        (static_cast<Int128>(payload_rate.raw()) * cell_bits()) /
        payload_bits));
  }

  // Framing efficiency of a given payload volume: payload / wire bits.
  double Efficiency(Bits payload) const {
    if (payload == 0) return 1.0;
    return static_cast<double>(payload) /
           static_cast<double>(WireBitsFor(payload));
  }
};

// Frames a per-slot payload stream into per-slot cell counts. Bits left
// over at slot end (less than one full cell) are carried to the next slot
// unless `flush_per_slot` — then every slot's tail cell is padded out (the
// low-latency choice: no bit waits for a co-tenant of its cell).
class CellFramer {
 public:
  explicit CellFramer(CellFormat format, bool flush_per_slot = true)
      : format_(format), flush_(flush_per_slot) {
    format_.Validate();
  }

  // Returns the number of cells emitted for this slot's payload bits.
  std::int64_t FrameSlot(Bits payload_bits) {
    BW_REQUIRE(payload_bits >= 0, "FrameSlot: negative payload");
    residual_ += payload_bits;
    std::int64_t cells = residual_ / format_.payload_bits;
    residual_ -= cells * format_.payload_bits;
    if (flush_ && residual_ > 0) {
      ++cells;
      padding_bits_ += format_.payload_bits - residual_;
      residual_ = 0;
    }
    cells_emitted_ += cells;
    payload_bits_ += payload_bits;
    return cells;
  }

  std::int64_t cells_emitted() const { return cells_emitted_; }
  Bits payload_bits() const { return payload_bits_; }
  Bits padding_bits() const { return padding_bits_; }
  Bits wire_bits() const { return cells_emitted_ * format_.cell_bits(); }

  // Payload bits per wire bit actually achieved (includes padding and
  // headers).
  double WireEfficiency() const {
    return wire_bits() == 0 ? 1.0
                            : static_cast<double>(payload_bits_) /
                                  static_cast<double>(wire_bits());
  }

 private:
  CellFormat format_;
  bool flush_;
  Bits residual_ = 0;
  std::int64_t cells_emitted_ = 0;
  Bits payload_bits_ = 0;
  Bits padding_bits_ = 0;
};

}  // namespace bwalloc
