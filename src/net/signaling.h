// Renegotiation signalling: allocation changes that take time to commit.
//
// The slotted model so far applies a new allocation instantly; on a real
// path the request must traverse every switch (NetworkPath's signalling
// latency) while the OLD allocation keeps serving. SignalingChannel tracks
// the in-flight request; SignalingAdapter wraps any single-session
// allocator so its decisions commit only after the path latency — which
// measurably erodes the delay guarantee, motivating the latency-
// compensated variant (MakeLatencyCompensatedParams).
#pragma once

#include <deque>
#include <memory>

#include "net/path.h"
#include "core/params.h"
#include "obs/tracer.h"
#include "sim/engine_single.h"
#include "util/assert.h"
#include "util/fixed_point.h"
#include "util/types.h"

namespace bwalloc {

// A bandwidth-allocation control channel with commit latency. Requests are
// idempotent (re-requesting the current/last-requested value is free) and
// pipelined: each distinct request commits `latency` slots after it was
// issued, in order.
class SignalingChannel {
 public:
  // `initial` is the allocation in force before the first request commits
  // (a session starts with whatever its setup reserved — 0 by default).
  explicit SignalingChannel(Time latency,
                            Bandwidth initial = Bandwidth::Zero())
      : latency_(latency), effective_(initial) {
    BW_REQUIRE(latency >= 0, "SignalingChannel: latency must be >= 0");
  }

  // Ask for `bw`, effective at now + latency. No-op if it equals the most
  // recent request. Returns true if a new signalling round was started.
  bool Request(Time now, Bandwidth bw) {
    if (has_request_ && bw == last_request_) return false;
    has_request_ = true;
    last_request_ = bw;
    ++requests_;
    tracer_.Emit(TraceEventType::kSignalRequest, now, session_, bw.raw(),
                 requests_);
    if (latency_ == 0) {
      effective_ = bw;
      in_flight_.clear();
      tracer_.Emit(TraceEventType::kSignalCommit, now, session_, bw.raw(),
                   now);
      return true;
    }
    in_flight_.push_back({now + latency_, bw});
    return true;
  }

  // The allocation actually in force during slot `now`.
  Bandwidth Effective(Time now) {
    while (!in_flight_.empty() && in_flight_.front().commit_at <= now) {
      effective_ = in_flight_.front().value;
      tracer_.Emit(TraceEventType::kSignalCommit, now, session_,
                   effective_.raw(), in_flight_.front().commit_at);
      in_flight_.pop_front();
    }
    return effective_;
  }

  std::int64_t requests() const { return requests_; }
  Time latency() const { return latency_; }

  // Attach a tracer; events are tagged with `session` (-1 = untagged).
  void SetTracer(const Tracer& tracer, std::int64_t session = -1) {
    tracer_ = tracer;
    session_ = session;
  }

 private:
  struct Pending {
    Time commit_at;
    Bandwidth value;
  };
  Time latency_;
  std::deque<Pending> in_flight_;
  Bandwidth effective_ = Bandwidth::Zero();
  bool has_request_ = false;
  Bandwidth last_request_;
  std::int64_t requests_ = 0;
  Tracer tracer_;  // disabled unless SetTracer was called
  std::int64_t session_ = -1;
};

// Runs an inner allocator behind a signalling channel: the inner decision
// at slot t serves traffic only from slot t + latency. The engine's change
// count then reflects committed transitions; `signaling_rounds()` counts
// the requests actually sent down the path (the priced quantity).
class SignalingAdapter final : public SingleSessionAllocator {
 public:
  SignalingAdapter(std::unique_ptr<SingleSessionAllocator> inner,
                   const NetworkPath& path)
      : inner_(std::move(inner)), channel_(path.SignalingLatency()) {
    BW_REQUIRE(inner_ != nullptr, "SignalingAdapter: null inner allocator");
  }

  Bandwidth OnSlot(Time now, Bits arrivals, Bits queue) override {
    channel_.Request(now, inner_->OnSlot(now, arrivals, queue));
    return channel_.Effective(now);
  }

  void OnServed(Time now, Bits served, Bits queue_after) override {
    inner_->OnServed(now, served, queue_after);
  }

  std::int64_t stages() const override { return inner_->stages(); }
  std::int64_t signaling_rounds() const { return channel_.requests(); }

  void SetTracer(const Tracer& tracer, std::int64_t session = -1) {
    channel_.SetTracer(tracer, session);
  }

 private:
  std::unique_ptr<SingleSessionAllocator> inner_;
  SignalingChannel channel_;
};

// Latency compensation: to keep the end-to-end delay bound D_A under a
// commit latency S, run the Fig. 3 algorithm against a tightened deadline
// D_A - 2S (each envelope decision serves traffic only S slots later, and
// the RESET's full-bandwidth drain also starts S late). Requires
// D_A - 2S to remain a valid even bound >= 2.
inline SingleSessionParams MakeLatencyCompensatedParams(
    SingleSessionParams params, Time signaling_latency) {
  BW_REQUIRE(signaling_latency >= 0, "latency must be >= 0");
  const Time tightened = params.max_delay - 2 * signaling_latency;
  BW_REQUIRE(tightened >= 2,
             "signalling latency leaves no delay budget to compensate");
  params.max_delay = tightened % 2 == 0 ? tightened : tightened - 1;
  BW_REQUIRE(params.window >= params.max_delay / 2,
             "W must be >= the tightened D_O");
  return params;
}

}  // namespace bwalloc
