// Unreliable control plane: deterministic fault injection for signalling.
//
// The SignalingChannel models a renegotiation that always succeeds exactly
// on time. Real control planes do not: the request message can be dropped
// by a congested switch, admission control can refuse to grant an
// increase, a switch can grant only part of the asked-for increment, and
// software invocation time varies. This header composes a NetworkPath
// with a seeded FaultPlan:
//
//   * FaultySignalingChannel walks every hop of the path per request and
//     decides — deterministically from (plan seed, attempt index) — whether
//     the message is lost, denied, partially granted, or committed after a
//     jittered delay. The endpoint observes only ACKs, NACKs and the
//     committed allocation; losses are invisible until a timeout.
//   * RobustSignalingAdapter wraps any SingleSessionAllocator behind such
//     a channel with stop-and-wait request handling, timeout detection,
//     capped exponential-backoff retry, and graceful degradation: the
//     session keeps serving at the last committed allocation, and after K
//     consecutive denials of an increase with a backlog present it falls
//     back to a RESET-style full-rate drain request so the queue stays
//     bounded.
//
// All randomness derives from the plan seed via the same SplitMix64
// machinery the batch runner uses, so a fault replay is bitwise identical
// at any --jobs value.
#pragma once

#include <algorithm>
#include <deque>
#include <memory>

#include "net/path.h"
#include "obs/telemetry/shard.h"
#include "obs/tracer.h"
#include "sim/engine_single.h"
#include "sim/run_result.h"
#include "state/serializer.h"
#include "util/assert.h"
#include "util/fixed_point.h"
#include "util/rng.h"
#include "util/types.h"

namespace bwalloc {

// Seeded description of how unreliable the control plane is. Rates apply
// per hop: a request traversing an h-hop path survives loss with
// probability (1 - loss_rate)^h. Denial and partial grants model admission
// control, so they apply only to increases — releasing bandwidth is always
// admitted (though the release message can still be lost).
struct FaultPlan {
  double loss_rate = 0.0;           // per-hop message loss probability
  double denial_rate = 0.0;         // per-hop admission denial of increases
  double partial_grant_rate = 0.0;  // per-hop partial grant of increases
  Time max_jitter = 0;              // commit delay jitter, uniform in [0, max]
  std::uint64_t seed = 0;

  bool Trivial() const {
    return loss_rate == 0.0 && denial_rate == 0.0 &&
           partial_grant_rate == 0.0 && max_jitter == 0;
  }

  void Validate() const {
    BW_REQUIRE(loss_rate >= 0.0 && loss_rate <= 1.0,
               "FaultPlan: loss_rate must be in [0, 1]");
    BW_REQUIRE(denial_rate >= 0.0 && denial_rate <= 1.0,
               "FaultPlan: denial_rate must be in [0, 1]");
    BW_REQUIRE(partial_grant_rate >= 0.0 && partial_grant_rate <= 1.0,
               "FaultPlan: partial_grant_rate must be in [0, 1]");
    BW_REQUIRE(max_jitter >= 0, "FaultPlan: max_jitter must be >= 0");
  }

  // Stricter check for retry-based users (the robust adapters and the CLI
  // front ends): a plan that loses every message or denies every increase
  // can never commit, so a capped retry loop makes progress impossible.
  // Bare channels may still carry such plans — the timeout/denial tests
  // depend on them — which is why this is not folded into Validate().
  void ValidateRecoverable() const {
    Validate();
    BW_REQUIRE(loss_rate < 1.0,
               "FaultPlan: loss_rate 1.0 loses every request; capped "
               "retries can never make progress");
    BW_REQUIRE(denial_rate < 1.0,
               "FaultPlan: denial_rate 1.0 denies every increase; capped "
               "retries can never make progress");
  }
};

// A signalling channel whose requests traverse the path hop by hop and can
// fail on the way. Endpoint-visible state is limited to what a real sender
// could know: the committed allocation (Effective), arrived ACKs and
// NACKs; ground-truth counters (losses, partial grants) are exposed for
// measurement via stats(). Commits apply FIFO — a jittered message never
// overtakes an earlier one on the same path.
class FaultySignalingChannel {
 public:
  FaultySignalingChannel(const NetworkPath& path, const FaultPlan& plan,
                         Bandwidth initial = Bandwidth::Zero())
      : plan_(plan),
        latency_(path.SignalingLatency()),
        hops_(path.hops()),
        effective_(initial),
        scheduled_tail_(initial) {
    plan_.Validate();
  }

  // Issue a request for `bw`. The outcome is decided now (deterministically
  // from the plan seed and the attempt index) but surfaces to the endpoint
  // only through Effective()/AcksArrived()/DenialsArrived().
  void Request(Time now, Bandwidth bw) {
    ++stats_.requests;
    tracer_.Emit(TraceEventType::kSignalRequest, now, session_, bw.raw(),
                 stats_.requests);
    Rng rng(DeriveStream(plan_.seed,
                         static_cast<std::uint64_t>(stats_.requests)));
    const Time jitter =
        plan_.max_jitter > 0 ? rng.UniformInt(0, plan_.max_jitter) : 0;
    const Bandwidth base = scheduled_tail_;
    const bool increase = bw > base;
    std::int64_t grant_quarters = 4;  // 4/4 = the full ask
    Time prefix = 0;
    for (std::int64_t h = 0; h < hops_; ++h) {
      prefix += per_hop_latency(h);
      if (rng.Bernoulli(plan_.loss_rate)) {
        ++stats_.losses;  // silence: the endpoint learns via timeout
        tracer_.Emit(TraceEventType::kSignalLoss, now, session_, h);
        return;
      }
      if (increase) {
        if (rng.Bernoulli(plan_.denial_rate)) {
          ++stats_.denials;  // NACK travels back from hop h
          nacks_.push_back(now + 2 * prefix + jitter);
          tracer_.Emit(TraceEventType::kSignalDenial, now, session_, h,
                       nacks_.back());
          return;
        }
        if (plan_.partial_grant_rate > 0.0 &&
            rng.Bernoulli(plan_.partial_grant_rate)) {
          grant_quarters = std::min(grant_quarters, rng.UniformInt(1, 3));
        }
      }
    }
    Bandwidth granted = bw;
    if (increase && grant_quarters < 4) {
      ++stats_.partial_grants;
      granted =
          base + Bandwidth::FromRaw((bw - base).raw() * grant_quarters / 4);
      tracer_.Emit(TraceEventType::kSignalPartial, now, session_,
                   granted.raw());
    }
    Time at = now + latency_ + jitter;
    if (!commits_.empty()) at = std::max(at, commits_.back().at);
    commits_.push_back({at, granted});
    scheduled_tail_ = granted;
    ++stats_.commits;
    tracer_.Emit(TraceEventType::kSignalCommit, now, session_, granted.raw(),
                 at);
  }

  // The allocation actually in force during slot `now`.
  Bandwidth Effective(Time now) {
    Advance(now);
    return effective_;
  }

  // Monotone counters of sender-side notifications that arrived by `now`;
  // the caller diffs successive reads.
  std::int64_t AcksArrived(Time now) {
    Advance(now);
    return acks_arrived_;
  }
  std::int64_t DenialsArrived(Time now) {
    Advance(now);
    return denials_arrived_;
  }

  // Upper bound on slots from Request to ACK/NACK arrival; a request still
  // unresolved past this was lost.
  Time WorstCaseResponse() const { return 2 * latency_ + plan_.max_jitter; }

  Time latency() const { return latency_; }
  const FaultStats& stats() const { return stats_; }

  // Attach a tracer; events are tagged with `session` (-1 = untagged).
  void SetTracer(const Tracer& tracer, std::int64_t session = -1) {
    tracer_ = tracer;
    session_ = session;
  }

  // The channel has no persistent RNG object: each request derives a fresh
  // stream from (plan seed, request index). Serializing stats_.requests IS
  // serializing the RNG stream position.
  void SaveState(StateWriter& w) const {
    w.Tag("FCH1");
    w.U64(commits_.size());
    for (const PendingCommit& c : commits_) {
      w.I64(c.at);
      w.I64(c.value.raw());
    }
    w.U64(nacks_.size());
    for (const Time t : nacks_) w.I64(t);
    w.I64(effective_.raw());
    w.I64(scheduled_tail_.raw());
    w.I64(acks_arrived_);
    w.I64(denials_arrived_);
    w.I64(stats_.requests);
    w.I64(stats_.commits);
    w.I64(stats_.losses);
    w.I64(stats_.denials);
    w.I64(stats_.partial_grants);
  }

  void LoadState(StateReader& r) {
    r.Tag("FCH1");
    commits_.clear();
    const std::uint64_t n_commits = r.Count(std::uint64_t{1} << 32);
    for (std::uint64_t i = 0; i < n_commits; ++i) {
      const Time at = r.I64();
      commits_.push_back({at, Bandwidth::FromRaw(r.I64())});
    }
    nacks_.clear();
    const std::uint64_t n_nacks = r.Count(std::uint64_t{1} << 32);
    for (std::uint64_t i = 0; i < n_nacks; ++i) nacks_.push_back(r.I64());
    effective_ = Bandwidth::FromRaw(r.I64());
    scheduled_tail_ = Bandwidth::FromRaw(r.I64());
    acks_arrived_ = r.I64();
    denials_arrived_ = r.I64();
    stats_.requests = r.I64();
    stats_.commits = r.I64();
    stats_.losses = r.I64();
    stats_.denials = r.I64();
    stats_.partial_grants = r.I64();
  }

 private:
  struct PendingCommit {
    Time at;
    Bandwidth value;
  };

  Time per_hop_latency(std::int64_t index) const {
    // Uniform split of the path latency; the remainder lands on hop 0 so
    // prefix sums stay exact.
    if (hops_ == 0) return 0;
    return latency_ / hops_ + (index == 0 ? latency_ % hops_ : 0);
  }

  void Advance(Time now) {
    while (!commits_.empty() && commits_.front().at <= now) {
      effective_ = commits_.front().value;
      commits_.pop_front();
      ++acks_arrived_;
    }
    while (!nacks_.empty() && nacks_.front() <= now) {
      nacks_.pop_front();
      ++denials_arrived_;
    }
  }

  FaultPlan plan_;
  Time latency_;
  std::int64_t hops_;
  std::deque<PendingCommit> commits_;
  std::deque<Time> nacks_;
  Bandwidth effective_;
  Bandwidth scheduled_tail_;  // last value scheduled to commit
  std::int64_t acks_arrived_ = 0;
  std::int64_t denials_arrived_ = 0;
  FaultStats stats_;
  Tracer tracer_;  // disabled unless SetTracer was called
  std::int64_t session_ = -1;
};

// Retry/degradation policy of the robust adapter.
struct RobustOptions {
  Time timeout_margin = 2;    // extra slots past WorstCaseResponse
  Time initial_backoff = 1;   // slots before the first re-attempt
  Time max_backoff = 64;      // exponential backoff cap
  std::int64_t fallback_after_denials = 3;  // K consecutive denials
  Bits fallback_bandwidth = 0;  // RESET-style drain rate, typically B_A

  void Validate() const {
    BW_REQUIRE(timeout_margin >= 1, "RobustOptions: timeout_margin >= 1");
    BW_REQUIRE(initial_backoff >= 1, "RobustOptions: initial_backoff >= 1");
    BW_REQUIRE(max_backoff >= initial_backoff,
               "RobustOptions: max_backoff >= initial_backoff");
    BW_REQUIRE(fallback_after_denials >= 1,
               "RobustOptions: fallback_after_denials >= 1");
    BW_REQUIRE(fallback_bandwidth > 0,
               "RobustOptions: fallback_bandwidth must be > 0");
  }
};

// Wraps any single-session allocator behind a FaultySignalingChannel.
// Stop-and-wait: at most one request is outstanding; while it is pending
// (or the control plane is down) the session keeps serving at the last
// committed allocation. A request unresolved past the channel's worst-case
// response is declared lost and retried with capped exponential backoff.
// After `fallback_after_denials` consecutive admission denials with a
// backlog present, the adapter abandons the inner allocator's incremental
// ask and requests a full-rate (fallback_bandwidth) drain — the same move
// as the Fig. 3 RESET — until the queue empties, which keeps the backlog
// bounded whenever the fault rates leave a nonzero success probability.
class RobustSignalingAdapter final : public SingleSessionAllocator {
 public:
  RobustSignalingAdapter(std::unique_ptr<SingleSessionAllocator> inner,
                         const NetworkPath& path, const FaultPlan& plan,
                         const RobustOptions& options)
      : inner_(std::move(inner)),
        channel_(path, plan),
        opts_(options),
        backoff_(options.initial_backoff) {
    BW_REQUIRE(inner_ != nullptr, "RobustSignalingAdapter: null inner");
    plan.ValidateRecoverable();
    opts_.Validate();
  }

  Bandwidth OnSlot(Time now, Bits arrivals, Bits queue) override {
    // The inner allocator always advances, even while its decisions cannot
    // be signalled — its state machine must track the actual traffic.
    const Bandwidth inner_want = inner_->OnSlot(now, arrivals, queue);
    Bandwidth effective = channel_.Effective(now);

    const std::int64_t acks = channel_.AcksArrived(now);
    if (acks > seen_acks_) {
      // Our request committed (possibly partially): progress, so reset the
      // backoff and the denial streak.
      if (telemetry_ != nullptr) {
        telemetry_->Add(telemetry::Counter::kSignalAcks, acks - seen_acks_);
        if (request_slot_ >= 0) {
          telemetry_->Record(telemetry::Histo::kSignalRttSlots,
                             now - request_slot_);
        }
        if (backoff_ > opts_.initial_backoff) {
          // A backoff episode just ended: its length is the value reached.
          telemetry_->Record(telemetry::Histo::kBackoffEpisodeSlots,
                             backoff_);
        }
      }
      seen_acks_ = acks;
      outstanding_ = false;
      backoff_ = opts_.initial_backoff;
      consecutive_denials_ = 0;
      next_attempt_at_ = now;
    }
    const std::int64_t nacks = channel_.DenialsArrived(now);
    if (nacks > seen_nacks_) {
      if (telemetry_ != nullptr) {
        telemetry_->Add(telemetry::Counter::kSignalNacks,
                        nacks - seen_nacks_);
      }
      consecutive_denials_ += nacks - seen_nacks_;
      seen_nacks_ = nacks;
      outstanding_ = false;
      next_attempt_at_ = now + backoff_;
      backoff_ = std::min(backoff_ * 2, opts_.max_backoff);
    }
    if (outstanding_ && now >= deadline_) {
      ++timeouts_;  // past worst-case response: the message was lost
      tracer_.Emit(TraceEventType::kSignalTimeout, now, session_, deadline_);
      if (telemetry_ != nullptr) {
        telemetry_->Add(telemetry::Counter::kSignalTimeouts);
      }
      outstanding_ = false;
      next_attempt_at_ = now + backoff_;
      backoff_ = std::min(backoff_ * 2, opts_.max_backoff);
    }

    if (!fallback_ && queue > 0 &&
        consecutive_denials_ >= opts_.fallback_after_denials) {
      fallback_ = true;
      ++fallbacks_;
      tracer_.Emit(TraceEventType::kSignalFallback, now, session_,
                   opts_.fallback_bandwidth);
      if (telemetry_ != nullptr) {
        telemetry_->Add(telemetry::Counter::kSignalFallbacks);
      }
    }

    const Bandwidth want =
        fallback_ ? Bandwidth::FromBitsPerSlot(opts_.fallback_bandwidth)
                  : inner_want;
    if (!outstanding_ && want != effective && now >= next_attempt_at_) {
      const bool retry = have_last_want_ && want == last_want_;
      if (retry) {
        ++retries_;
        tracer_.Emit(TraceEventType::kSignalRetry, now, session_, want.raw(),
                     backoff_);
      }
      channel_.Request(now, want);
      if (telemetry_ != nullptr) {
        telemetry_->Add(telemetry::Counter::kSignalsSent);
      }
      request_slot_ = now;
      have_last_want_ = true;
      last_want_ = want;
      outstanding_ = true;
      deadline_ = now + channel_.WorstCaseResponse() + opts_.timeout_margin;
      effective = channel_.Effective(now);  // zero-latency paths commit now
    }
    return effective;
  }

  void OnServed(Time now, Bits served, Bits queue_after) override {
    inner_->OnServed(now, served, queue_after);
    if (fallback_ && queue_after == 0) {
      // Drain complete: hand control back to the inner allocator.
      fallback_ = false;
      consecutive_denials_ = 0;
      backoff_ = opts_.initial_backoff;
    }
  }

  std::int64_t stages() const override { return inner_->stages(); }

  // Channel ground truth plus the adapter's endpoint-side counters.
  FaultStats fault_stats() const {
    FaultStats s = channel_.stats();
    s.timeouts = timeouts_;
    s.retries = retries_;
    s.fallbacks = fallbacks_;
    return s;
  }

  bool in_fallback() const { return fallback_; }

  // Attach a tracer to the adapter and its channel; events are tagged with
  // `session` (-1 = untagged).
  void SetTracer(const Tracer& tracer, std::int64_t session = -1) {
    tracer_ = tracer;
    session_ = session;
    channel_.SetTracer(tracer, session);
  }

  // Live telemetry (signal RTT, backoff episodes, denial/timeout counts).
  // Nondeterministic lane: never saved in checkpoints, never affects the
  // adapter's decisions.
  void SetTelemetry(telemetry::RuntimeShard* shard) { telemetry_ = shard; }

  // --- checkpoint/restore ---------------------------------------------------
  bool SupportsCheckpoint() const override {
    return inner_->SupportsCheckpoint();
  }

  void SaveState(StateWriter& w) const override {
    w.Tag("RSA1");
    inner_->SaveState(w);
    channel_.SaveState(w);
    w.Bool(outstanding_);
    w.I64(deadline_);
    w.I64(next_attempt_at_);
    w.I64(backoff_);
    w.I64(consecutive_denials_);
    w.Bool(fallback_);
    w.I64(last_want_.raw());
    w.Bool(have_last_want_);
    w.I64(seen_acks_);
    w.I64(seen_nacks_);
    w.I64(timeouts_);
    w.I64(retries_);
    w.I64(fallbacks_);
  }

  void LoadState(StateReader& r) override {
    r.Tag("RSA1");
    inner_->LoadState(r);
    channel_.LoadState(r);
    outstanding_ = r.Bool();
    deadline_ = r.I64();
    next_attempt_at_ = r.I64();
    backoff_ = r.I64();
    consecutive_denials_ = r.I64();
    fallback_ = r.Bool();
    last_want_ = Bandwidth::FromRaw(r.I64());
    have_last_want_ = r.Bool();
    seen_acks_ = r.I64();
    seen_nacks_ = r.I64();
    timeouts_ = r.I64();
    retries_ = r.I64();
    fallbacks_ = r.I64();
  }

 private:
  std::unique_ptr<SingleSessionAllocator> inner_;
  FaultySignalingChannel channel_;
  RobustOptions opts_;

  bool outstanding_ = false;
  Time deadline_ = 0;
  Time next_attempt_at_ = 0;
  Time backoff_;
  std::int64_t consecutive_denials_ = 0;
  bool fallback_ = false;
  Bandwidth last_want_;
  bool have_last_want_ = false;
  std::int64_t seen_acks_ = 0;
  std::int64_t seen_nacks_ = 0;
  std::int64_t timeouts_ = 0;
  std::int64_t retries_ = 0;
  std::int64_t fallbacks_ = 0;
  Tracer tracer_;  // disabled unless SetTracer was called
  std::int64_t session_ = -1;
  // Live-lane only (not checkpointed): shard + the slot of the last
  // request, for ack RTT measurement. A resume restarts the measurement.
  telemetry::RuntimeShard* telemetry_ = nullptr;
  Time request_slot_ = -1;
};

}  // namespace bwalloc
