#include "net/multi_faults.h"

#include <algorithm>

#include "util/assert.h"
#include "util/rng.h"

namespace bwalloc {

namespace {

std::int64_t RequireSessions(const MultiSessionSystem* inner) {
  BW_REQUIRE(inner != nullptr, "RobustMultiSessionAdapter: null inner");
  return inner->channels().sessions();
}

}  // namespace

FaultPlan PerSessionPlan(const FaultPlan& plan, std::int64_t session) {
  BW_REQUIRE(session >= 0, "PerSessionPlan: session must be >= 0");
  FaultPlan out = plan;
  out.seed = DeriveStream(plan.seed, static_cast<std::uint64_t>(session));
  return out;
}

RobustMultiSessionAdapter::RobustMultiSessionAdapter(
    std::unique_ptr<MultiSessionSystem> inner, const NetworkPath& path,
    const FaultPlan& plan, const RobustMultiOptions& options)
    : inner_(std::move(inner)),
      opts_(options),
      sessions_(RequireSessions(inner_.get())),
      channels_(sessions_, ServiceDiscipline::kFifoCombined) {
  plan.ValidateRecoverable();
  opts_.Validate();
  lanes_.reserve(static_cast<std::size_t>(sessions_));
  for (std::int64_t i = 0; i < sessions_; ++i) {
    lanes_.emplace_back(FaultySignalingChannel(path, PerSessionPlan(plan, i)));
    lanes_.back().backoff = opts_.initial_backoff;
  }
}

void RobustMultiSessionAdapter::Step(Time now,
                                     std::span<const Bits> arrivals) {
  BW_CHECK(static_cast<std::int64_t>(arrivals.size()) == sessions_,
           "RobustMultiSessionAdapter: arrivals size != sessions");
  // The control model always advances, fault-free: its per-session rates
  // are the intents the lanes try to commit, and its state machine must
  // keep tracking the actual traffic even while signalling is down.
  inner_->Step(now, arrivals);

  for (std::int64_t i = 0; i < sessions_; ++i) {
    channels_.Enqueue(i, now, arrivals[static_cast<std::size_t>(i)]);
  }

  // The combined algorithm serves part of the load on a global channel the
  // real data plane does not have; split that reservation evenly across
  // the lanes (raw Q16 division, remainder to session 0) so the intents
  // still sum to the declared allocation exactly.
  const std::int64_t extra_raw = inner_->ExtraAllocatedBandwidth().raw();
  const std::int64_t extra_each = extra_raw / sessions_;
  const std::int64_t extra_rem = extra_raw % sessions_;

  const SessionChannels& intent = inner_->channels();
  for (std::int64_t i = 0; i < sessions_; ++i) {
    if (!lanes_[static_cast<std::size_t>(i)].active) continue;
    const Bandwidth intended =
        intent.regular_bw(i) + intent.overflow_bw(i) +
        Bandwidth::FromRaw(extra_each + (i == 0 ? extra_rem : 0));
    StepLane(now, i, intended);
  }

  channels_.ServeSlot(now);

  for (std::int64_t i = 0; i < sessions_; ++i) {
    Lane& lane = lanes_[static_cast<std::size_t>(i)];
    if (!lane.active) continue;
    if (lane.fallback && channels_.regular_queue_size(i) == 0) {
      // Drain complete: hand the lane back to the control model's intent.
      lane.fallback = false;
      lane.consecutive_denials = 0;
      lane.backoff = opts_.initial_backoff;
    }
  }

  if (telemetry_ != nullptr) {
    telemetry_->GaugeSet(telemetry::Gauge::kDegradedLanes, degraded_count_);
  }
}

void RobustMultiSessionAdapter::StepLane(Time now, std::int64_t i,
                                         Bandwidth intended) {
  Lane& lane = lanes_[static_cast<std::size_t>(i)];
  const bool was_degraded = lane.degraded;
  Bandwidth effective = lane.channel.Effective(now);
  const Bits queue = channels_.regular_queue_size(i);

  const std::int64_t acks = lane.channel.AcksArrived(now);
  if (acks > lane.seen_acks) {
    if (telemetry_ != nullptr) {
      telemetry_->Add(telemetry::Counter::kSignalAcks, acks - lane.seen_acks);
      if (lane.request_slot >= 0) {
        telemetry_->Record(telemetry::Histo::kSignalRttSlots,
                           now - lane.request_slot);
        lane.request_slot = -1;
      }
      if (lane.backoff > opts_.initial_backoff) {
        // The episode only counts once it actually escalated past the
        // initial wait; record its length at the moment it resolves.
        telemetry_->Record(telemetry::Histo::kBackoffEpisodeSlots,
                           lane.backoff);
      }
    }
    // Our request committed (possibly partially): progress, so reset the
    // backoff and the denial streak.
    lane.seen_acks = acks;
    lane.outstanding = false;
    lane.backoff = opts_.initial_backoff;
    lane.consecutive_denials = 0;
    lane.next_attempt_at = now;
    if (lane.have_last_want && effective != lane.last_want) {
      lane.degraded = true;  // partial grant: another ask must converge it
    }
  }
  const std::int64_t nacks = lane.channel.DenialsArrived(now);
  if (nacks > lane.seen_nacks) {
    if (telemetry_ != nullptr) {
      telemetry_->Add(telemetry::Counter::kSignalNacks,
                      nacks - lane.seen_nacks);
    }
    lane.consecutive_denials += nacks - lane.seen_nacks;
    lane.seen_nacks = nacks;
    lane.outstanding = false;
    lane.next_attempt_at = now + lane.backoff;
    lane.backoff = std::min(lane.backoff * 2, opts_.max_backoff);
    lane.degraded = true;
  }
  if (lane.outstanding && now >= lane.deadline) {
    ++lane.timeouts;  // past worst-case response: the message was lost
    if (telemetry_ != nullptr) {
      telemetry_->Add(telemetry::Counter::kSignalTimeouts);
    }
    tracer_.Emit(TraceEventType::kSignalTimeout, now, i, lane.deadline);
    lane.outstanding = false;
    lane.next_attempt_at = now + lane.backoff;
    lane.backoff = std::min(lane.backoff * 2, opts_.max_backoff);
    lane.degraded = true;
  }

  if (!lane.fallback && queue > 0 &&
      lane.consecutive_denials >= opts_.fallback_after_denials) {
    lane.fallback = true;
    ++lane.fallbacks;
    if (telemetry_ != nullptr) {
      telemetry_->Add(telemetry::Counter::kSignalFallbacks);
    }
    tracer_.Emit(TraceEventType::kSignalFallback, now, i,
                 opts_.fallback_bandwidth);
  }

  Bandwidth want;
  if (lane.fallback) {
    want = Bandwidth::FromBitsPerSlot(opts_.fallback_bandwidth);
  } else if (queue > 0 && intended < effective) {
    // Degraded-mode discipline for decreases: the control model's phantom
    // queues drained at rates this lane never committed, so its step-down
    // may be premature for the real backlog. Hold the committed rate until
    // the lane's own queue empties, then follow the decrease.
    want = effective;
  } else {
    want = intended;
  }

  if (!lane.outstanding && want != effective && now >= lane.next_attempt_at) {
    const bool retry = lane.have_last_want && want == lane.last_want;
    if (retry) {
      ++lane.retries;
      tracer_.Emit(TraceEventType::kSignalRetry, now, i, want.raw(),
                   lane.backoff);
    }
    if (telemetry_ != nullptr) {
      telemetry_->Add(telemetry::Counter::kSignalsSent);
      lane.request_slot = now;
    }
    lane.channel.Request(now, want);
    lane.have_last_want = true;
    lane.last_want = want;
    lane.outstanding = true;
    lane.deadline =
        now + lane.channel.WorstCaseResponse() + opts_.timeout_margin;
    effective = lane.channel.Effective(now);  // zero-latency paths commit now
  }

  if (lane.degraded && !lane.outstanding && !lane.fallback &&
      effective == want) {
    // The committed allocation is back at the lane's chosen rate (the
    // intent, or a held drain rate that covers it): close the degraded
    // window so the auditor can resume its per-session monitors.
    lane.degraded = false;
    tracer_.Emit(TraceEventType::kSignalRecover, now, i, effective.raw());
  }

  // Maintained unconditionally (degraded flips only happen here) so the
  // gauge is right even when a telemetry shard is attached mid-run.
  if (lane.degraded != was_degraded) {
    degraded_count_ += lane.degraded ? 1 : -1;
  }

  channels_.SetRegular(i, effective);
}

void RobustMultiSessionAdapter::OnSessionJoin(Time now, std::int64_t session) {
  inner_->OnSessionJoin(now, session);
  lanes_[static_cast<std::size_t>(session)].active = true;
}

Bits RobustMultiSessionAdapter::OnSessionDepart(Time now,
                                                std::int64_t session) {
  // The control model drops its phantom copy of the session's bits; the
  // real drop below is the one the result counters see.
  inner_->OnSessionDepart(now, session);
  Lane& lane = lanes_[static_cast<std::size_t>(session)];
  lane.active = false;
  lane.outstanding = false;
  lane.fallback = false;
  lane.consecutive_denials = 0;
  lane.backoff = opts_.initial_backoff;
  lane.have_last_want = false;
  lane.next_attempt_at = now;
  lane.request_slot = -1;
  if (lane.degraded) {
    lane.degraded = false;
    --degraded_count_;
  }
  // A departed lane owes no convergence. Emitted unconditionally, not just
  // when this side thinks the lane is degraded: an in-flight request lost
  // by the path has already opened the auditor's episode (it sees the
  // channel's loss event) even though no timeout has fired here yet, and
  // the lane goes silent forever after departing.
  tracer_.Emit(TraceEventType::kSignalRecover, now, session, 0);
  channels_.SetRegular(session, Bandwidth::Zero());
  return channels_.DropSession(session);
}

void RobustMultiSessionAdapter::SetTelemetry(telemetry::RuntimeShard* shard) {
  telemetry_ = shard;
  // Unlike the tracer, telemetry IS forwarded to the control model: its
  // timer-wheel scans are real CPU cost on this thread, and the live lane
  // never alters behaviour, so there is no semantics hazard in surfacing
  // them.
  inner_->SetTelemetry(shard);
}

void RobustMultiSessionAdapter::SetTracer(const Tracer& tracer) {
  // Deliberately not forwarded to the inner system: its phase boundaries,
  // stage certifications and global RESETs describe allocations that may
  // never have committed, and surfacing them would hold a degraded run to
  // fault-free discipline mid-outage.
  tracer_ = tracer;
  for (std::int64_t i = 0; i < sessions_; ++i) {
    lanes_[static_cast<std::size_t>(i)].channel.SetTracer(tracer, i);
  }
}

FaultStats RobustMultiSessionAdapter::fault_stats() const {
  FaultStats total;
  for (const FaultStats& s : per_session_fault_stats()) total.Merge(s);
  return total;
}

std::vector<FaultStats> RobustMultiSessionAdapter::per_session_fault_stats()
    const {
  std::vector<FaultStats> out;
  out.reserve(lanes_.size());
  for (const Lane& lane : lanes_) {
    FaultStats s = lane.channel.stats();
    s.timeouts = lane.timeouts;
    s.retries = lane.retries;
    s.fallbacks = lane.fallbacks;
    out.push_back(s);
  }
  return out;
}

bool RobustMultiSessionAdapter::in_fallback(std::int64_t session) const {
  BW_CHECK(session >= 0 && session < sessions_,
           "in_fallback: session out of range");
  return lanes_[static_cast<std::size_t>(session)].fallback;
}

}  // namespace bwalloc
