#include "runner/merge.h"

#include <algorithm>

namespace bwalloc {

void AggregateStats::Add(const SingleRunResult& r) {
  ++tasks;
  total_arrivals += r.total_arrivals;
  total_delivered += r.total_delivered;
  final_queue += r.final_queue;
  dropped += r.dropped;
  changes += r.changes;
  stages += r.stages;
  total_allocated_raw += r.total_allocated_raw;
  faults.Merge(r.faults);
  max_delay = std::max(max_delay, r.delay.max_delay());
  peak_allocation = std::max(peak_allocation, r.peak_allocation);
  if (r.total_arrivals > 0) {
    min_local_utilization =
        std::min(min_local_utilization, r.worst_best_window_utilization);
  }
  delay.Merge(r.delay);
}

void AggregateStats::Add(const MultiRunResult& r) {
  ++tasks;
  total_arrivals += r.total_arrivals;
  total_delivered += r.total_delivered;
  final_queue += r.final_queue;
  changes += r.local_changes;
  global_changes += r.global_changes;
  stages += r.stages;
  total_allocated_raw += r.total_allocated_raw;
  faults.Merge(r.faults);
  max_delay = std::max(max_delay, r.delay.max_delay());
  peak_allocation = std::max(peak_allocation, r.peak_total_allocation);
  if (r.total_arrivals > 0) {
    min_local_utilization =
        std::min(min_local_utilization, r.worst_best_window_utilization);
  }
  delay.Merge(r.delay);
}

void AggregateStats::Merge(const AggregateStats& other) {
  tasks += other.tasks;
  total_arrivals += other.total_arrivals;
  total_delivered += other.total_delivered;
  final_queue += other.final_queue;
  dropped += other.dropped;
  changes += other.changes;
  global_changes += other.global_changes;
  stages += other.stages;
  total_allocated_raw += other.total_allocated_raw;
  faults.Merge(other.faults);
  max_delay = std::max(max_delay, other.max_delay);
  peak_allocation = std::max(peak_allocation, other.peak_allocation);
  min_local_utilization =
      std::min(min_local_utilization, other.min_local_utilization);
  delay.Merge(other.delay);
  metrics.Merge(other.metrics);
}

Ratio AggregateStats::GlobalUtilization() const {
  if (total_allocated_raw <= 0) return Ratio();
  return Ratio(total_arrivals << Bandwidth::kShift, total_allocated_raw)
      .Normalized();
}

Ratio AggregateStats::ChangesPerStage() const {
  return Ratio(changes, std::max<std::int64_t>(1, stages)).Normalized();
}

bool operator==(const AggregateStats& a, const AggregateStats& b) {
  return a.tasks == b.tasks && a.total_arrivals == b.total_arrivals &&
         a.total_delivered == b.total_delivered &&
         a.final_queue == b.final_queue && a.dropped == b.dropped &&
         a.changes == b.changes && a.global_changes == b.global_changes &&
         a.stages == b.stages &&
         a.total_allocated_raw == b.total_allocated_raw &&
         a.faults == b.faults &&
         a.max_delay == b.max_delay &&
         a.peak_allocation == b.peak_allocation &&
         a.min_local_utilization == b.min_local_utilization &&
         a.delay == b.delay && a.metrics == b.metrics;
}

}  // namespace bwalloc
