// ParallelSweep — property-test helper on top of BatchRunner.
//
// A sweep runs `count` independent checks; each check returns "" on
// success or a human-readable violation message. Failures (including
// thrown exceptions) are collected per task key in index order, so a test
// asserts once on the whole grid and still names every offending cell.
// Checks get their randomness/parameters from the TaskContext key and
// seed, which keeps a widened grid deterministic at any thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>

#include "runner/batch_runner.h"

namespace bwalloc {

struct SweepOptions {
  int jobs = ThreadPool::kAutoThreads;
  std::uint64_t base_seed = 0;
};

struct SweepResult {
  std::int64_t tasks = 0;
  std::vector<TaskError> failures;  // task-index order

  bool ok() const { return failures.empty(); }
  std::string Summary() const {
    return failures.empty()
               ? "all " + std::to_string(tasks) + " sweep tasks passed"
               : FormatErrors(failures);
  }
};

// F: std::string(const TaskContext&) — empty string means the check held.
template <typename F>
SweepResult ParallelSweep(const std::string& suite, std::int64_t count, F&& check,
                          const SweepOptions& options = {}) {
  BatchRunner runner(BatchOptions{options.jobs, options.base_seed});
  BatchResult<std::string> batch =
      runner.Map<std::string>(suite, count, std::forward<F>(check));
  SweepResult out;
  out.tasks = count;
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    if (batch.results[i].has_value() && !batch.results[i]->empty()) {
      out.failures.push_back(
          {{suite, static_cast<std::int64_t>(i)}, *batch.results[i]});
    }
  }
  // Thrown checks count as failures too, interleaved by index.
  for (TaskError& e : batch.errors) out.failures.push_back(std::move(e));
  std::stable_sort(out.failures.begin(), out.failures.end(),
                   [](const TaskError& a, const TaskError& b) {
                     return a.key.index < b.key.index;
                   });
  return out;
}

}  // namespace bwalloc
