// Chase–Lev work-stealing deque over chunks of task indices.
//
// One deque per pool worker. The scheduling idiom follows Chase & Lev,
// "Dynamic Circular Work-Stealing Deque" (SPAA 2005): the owner pops from
// the bottom with plain atomic loads/stores (one CAS only when racing a
// thief for the last chunk), thieves CAS the top. Two properties of the
// batch runner let this implementation stay a strict subset of the full
// algorithm:
//
//   * The ring is seeded once per batch, before any worker wakes, under
//     the pool's batch mutex — so the element array is never written
//     concurrently with pops/steals and needs no growth or garbage
//     collection. top_ only ever increases, bottom_ only decreases.
//   * Entries are index CHUNKS ([begin, end) ranges), not single tasks:
//     block-chunked distribution amortizes steal traffic, one atomic
//     claim hands a thief or the owner a whole run of cells.
//
// Every chunk is claimed exactly once: a thief's successful CAS on top_
// excludes both other thieves and the owner's last-chunk CAS; the owner's
// bottom_ decrement publishes before it re-reads top_ (seq_cst on both
// sides), so the "deque looks non-empty to both" window always resolves
// through the CAS. Claim order is deterministic per deque (owner ascends
// from the bottom, thieves drain the top) but interleaving across deques
// is scheduling-dependent — which is fine, because batch results are
// keyed by index, never by completion order.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace bwalloc {

// A contiguous run of task indices [begin, end), end > begin.
struct IndexChunk {
  std::size_t begin = 0;
  std::size_t end = 0;
};

class WorkStealingDeque {
 public:
  // Outcome of a steal attempt, so idle workers can tell "this deque is
  // drained" (kEmpty — chunks never appear mid-batch, the state is final)
  // from "lost a race, retry" (kLost).
  enum class Steal { kGot, kEmpty, kLost };

  // Installs this batch's chunks. MUST happen-before any pop/steal of the
  // batch (the pool seeds every deque under its mutex before waking
  // workers). Chunks are stored in the given order: index 0 is the top
  // (steal end), the last entry is the bottom (first owner pop).
  void Seed(const std::vector<IndexChunk>& chunks) {
    ring_ = chunks;
    top_.store(0, std::memory_order_relaxed);
    bottom_.store(static_cast<std::int64_t>(ring_.size()),
                  std::memory_order_relaxed);
  }

  // Owner only. Claims the bottom chunk; false when the deque is empty.
  bool PopBottom(IndexChunk* out) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    // seq_cst store: the decrement must be visible to thieves before the
    // top_ read below, or owner and thief could both claim the last chunk.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Already drained; restore bottom for the (idle) steady state.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return false;
    }
    *out = ring_[static_cast<std::size_t>(b)];
    if (t == b) {
      // Last chunk: race any thief for it via the top CAS.
      const bool won = top_.compare_exchange_strong(
          t, t + 1, std::memory_order_seq_cst, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_relaxed);
      return won;
    }
    return true;
  }

  // Any thread. Claims the top chunk when one exists.
  Steal StealTop(IndexChunk* out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return Steal::kEmpty;
    // Read the element before the CAS: once top_ advances the owner may
    // consider the slot dead. (The ring is never overwritten mid-batch,
    // so the read itself is race-free; the protocol ordering is what
    // makes the claim exclusive.)
    const IndexChunk c = ring_[static_cast<std::size_t>(t)];
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return Steal::kLost;
    }
    *out = c;
    return Steal::kGot;
  }

 private:
  std::vector<IndexChunk> ring_;
  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
};

}  // namespace bwalloc
