// Seeded, deterministic crash schedule for supervised batch runs.
//
// A CrashPlan decides — from the stable (suite, index) task key alone,
// never from thread scheduling — which cells of a batch get a crash
// injected and at which slot. The chosen slot feeds
// CheckpointOptions::crash_at; the engine throws CrashInjected after
// finishing that slot, and BatchRunner::MapSupervised catches it,
// restores the cell's last checkpoint, and reruns the cell to completion.
//
// Crashes fire only on a cell's first attempt: a supervised restart must
// always be able to finish, and keeping the schedule a pure function of
// (seed, key, attempt) keeps the whole batch replayable from its seed.
#pragma once

#include <cstdint>

#include "runner/task.h"
#include "util/rng.h"
#include "util/types.h"

namespace bwalloc {

struct CrashPlan {
  std::uint64_t seed = 0;
  // Probability that a given cell crashes on its first attempt.
  double crash_rate = 0.0;
  // Injected crash slots are drawn uniformly from [min_slot, max_slot].
  // Choose the range so at least one checkpoint lands before it, or the
  // restarted attempt simply replays from slot 0 (still correct, slower).
  Time min_slot = 0;
  Time max_slot = 0;

  bool enabled() const { return crash_rate > 0.0 && max_slot >= min_slot; }

  // The slot to pass as CheckpointOptions::crash_at for this attempt of
  // this cell, or kNoTime when the cell runs through undisturbed. The
  // draw depends only on (seed, key): two sweeps with the same plan crash
  // the same cells at the same slots regardless of --jobs.
  Time CrashSlotFor(const TaskKey& key, std::int64_t attempt = 0) const {
    if (!enabled() || attempt > 0) return kNoTime;
    Rng rng(DeriveStream(seed ^ HashString(key.suite),
                         static_cast<std::uint64_t>(key.index)));
    if (!rng.Bernoulli(crash_rate)) return kNoTime;
    return rng.UniformInt(min_slot, max_slot);
  }
};

}  // namespace bwalloc
