// Sharded batch execution with deterministic replay.
//
// BatchRunner::Map runs `count` independent tasks across a fixed-size
// thread pool. Determinism contract:
//   * each task's RNG stream derives from its stable (suite, index) key
//     (util/rng.h DeriveStream), never from the executing thread;
//   * each task writes only its own result slot;
//   * callers reduce the result vector in task-index order.
// Under that contract the merged output of a batch is bitwise identical
// for every --jobs value — threads change wall-clock, nothing else.
//
// A task that throws does not abort the batch: its slot stays empty and
// its (key, message) pair is reported in index order.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "runner/task.h"
#include "runner/thread_pool.h"
#include "state/checkpoint.h"

namespace bwalloc {

struct BatchOptions {
  // Worker threads; 0 = hardware concurrency, 1 = serial reference.
  int jobs = 1;
  // Folded into every task seed; lets one suite spec span seed families.
  std::uint64_t base_seed = 0;
  // Live telemetry hub for the pool's scheduler counters (steals, backoff,
  // steal latency). Nondeterministic lane: never affects batch results.
  telemetry::TelemetryHub* telemetry = nullptr;
};

// "task 3/acme[7]: boom; task 9/..." — one line per failure.
std::string FormatErrors(const std::vector<TaskError>& errors);

template <typename R>
struct BatchResult {
  std::vector<std::optional<R>> results;  // slot i holds task i, empty on failure
  std::vector<TaskError> errors;          // failing tasks, index order

  bool ok() const { return errors.empty(); }

  // Every result in task-index order. Throws std::logic_error when any
  // task failed: with failed slots compacted out, position in the
  // returned vector would no longer equal task index, and an
  // index-ordered reduction over it would silently misalign. Callers
  // that can tolerate failures must consume `results`/`errors` (where
  // slot i always holds task i) instead of this flattened view.
  std::vector<R> Values() const {
    if (!ok()) {
      throw std::logic_error(
          "BatchResult::Values() on a failed batch would misalign the "
          "index-ordered reduction (" + FormatErrors(errors) + ")");
    }
    std::vector<R> out;
    out.reserve(results.size());
    for (const std::optional<R>& r : results) out.push_back(*r);
    return out;
  }
};

class BatchRunner {
 public:
  explicit BatchRunner(const BatchOptions& options = {})
      : pool_(options.jobs), base_seed_(options.base_seed) {
    pool_.SetTelemetry(options.telemetry);
  }

  int jobs() const { return pool_.threads(); }

  // Scheduler telemetry (steal/idle counters) for all batches run so far.
  PoolStats pool_stats() const { return pool_.stats(); }

  // Runs fn(TaskContext) for each task of `suite`, returning results and
  // failures keyed by task index.
  template <typename R, typename F>
  BatchResult<R> Map(const std::string& suite, std::int64_t count, F&& fn) {
    BatchResult<R> out;
    const auto n = static_cast<std::size_t>(count);
    out.results.resize(n);
    std::vector<std::string> messages(n);
    std::vector<char> failed(n, 0);  // char, not bool: disjoint writes
    pool_.RunIndexed(n, [&](std::size_t i) {
      const auto index = static_cast<std::int64_t>(i);
      const TaskContext ctx{{suite, index}, TaskSeed(suite, index, base_seed_)};
      try {
        out.results[i] = fn(ctx);
      } catch (const std::exception& e) {
        messages[i] = e.what();
        failed[i] = 1;
      } catch (...) {
        messages[i] = "unknown exception";
        failed[i] = 1;
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      if (failed[i]) {
        out.errors.push_back(
            {{suite, static_cast<std::int64_t>(i)}, std::move(messages[i])});
      }
    }
    return out;
  }

  // Like Map, but the task body takes (ctx, attempt) and is supervised
  // against injected crashes: when an attempt throws CrashInjected the
  // same cell is rerun in place with attempt + 1 (the body is expected to
  // resume from the checkpoint it captured on the crashed attempt).
  // Restarts happen inside the cell's pool slot, so the determinism
  // contract is untouched — results stay bitwise identical to an
  // unsupervised, crash-free run of the same suite. Any other exception
  // fails the cell as in Map; exceeding `max_restarts` consecutive
  // crashes fails it too. `crashes_observed`, when non-null, receives the
  // total number of injected crashes the batch recovered from.
  template <typename R, typename F>
  BatchResult<R> MapSupervised(const std::string& suite, std::int64_t count,
                               F&& fn, std::int64_t* crashes_observed = nullptr,
                               std::int64_t max_restarts = 8) {
    BatchResult<R> out;
    const auto n = static_cast<std::size_t>(count);
    out.results.resize(n);
    std::vector<std::string> messages(n);
    std::vector<char> failed(n, 0);  // char, not bool: disjoint writes
    std::vector<std::int64_t> crashes(n, 0);
    pool_.RunIndexed(n, [&](std::size_t i) {
      const auto index = static_cast<std::int64_t>(i);
      const TaskContext ctx{{suite, index}, TaskSeed(suite, index, base_seed_)};
      for (std::int64_t attempt = 0;; ++attempt) {
        try {
          out.results[i] = fn(ctx, attempt);
          return;
        } catch (const CrashInjected&) {
          ++crashes[i];
          if (attempt >= max_restarts) {
            messages[i] = "cell crashed " + std::to_string(attempt + 1) +
                          " times; giving up";
            failed[i] = 1;
            return;
          }
        } catch (const std::exception& e) {
          messages[i] = e.what();
          failed[i] = 1;
          return;
        } catch (...) {
          messages[i] = "unknown exception";
          failed[i] = 1;
          return;
        }
      }
    });
    for (std::size_t i = 0; i < n; ++i) {
      if (failed[i]) {
        out.errors.push_back(
            {{suite, static_cast<std::int64_t>(i)}, std::move(messages[i])});
      }
    }
    if (crashes_observed != nullptr) {
      *crashes_observed = 0;
      for (const std::int64_t c : crashes) *crashes_observed += c;
    }
    return out;
  }

 private:
  ThreadPool pool_;
  std::uint64_t base_seed_;
};

// Largest worker count StripJobsFlag accepts; anything above is a usage
// error (a pool of thousands of threads is a typo, not a request).
inline constexpr int kMaxJobsFlag = 1024;

// Strips a trailing/leading `--jobs=N` argument from argv (compacting it)
// and returns N; returns `fallback` when absent. Lets the bench binaries
// keep their existing "first positional arg = artifact dir" convention.
// Malformed or out-of-range values ("--jobs=abc", "--jobs=99999999999")
// throw bwalloc::UsageError naming the flag — the guarded ParseInt
// convention from util/parse_num.h — never a bare std::invalid_argument /
// std::out_of_range from std::stoi.
int StripJobsFlag(int* argc, char** argv, int fallback);

}  // namespace bwalloc
