#include "runner/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace bwalloc {
namespace {

// The pool (if any) whose RunIndexed the current thread is executing a
// task for — the re-entry guard. A stack discipline (save/restore) keeps
// nesting across DIFFERENT pools legal.
thread_local const ThreadPool* tl_active_pool = nullptr;

class ActivePoolGuard {
 public:
  explicit ActivePoolGuard(const ThreadPool* pool)
      : saved_(tl_active_pool) {
    tl_active_pool = pool;
  }
  ~ActivePoolGuard() { tl_active_pool = saved_; }
  ActivePoolGuard(const ActivePoolGuard&) = delete;
  ActivePoolGuard& operator=(const ActivePoolGuard&) = delete;

 private:
  const ThreadPool* saved_;
};

inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

// ~8 chunks per worker: enough granularity for thieves to rebalance a
// skewed block, few enough that claim traffic stays negligible.
std::size_t ChunkSize(std::size_t count, int threads) {
  const std::size_t per = count / (static_cast<std::size_t>(threads) * 8);
  return std::clamp<std::size_t>(per, 1, 1024);
}

// Backoff rounds below this spin on the CPU; at or above, yield to the
// scheduler (essential when workers outnumber cores).
constexpr int kYieldAfter = 64;
constexpr int kMaxBackoff = 1024;

// Flushes one Drain's batch-local scheduler counters into the worker's
// telemetry shard (live lane; PoolStats stays the deterministic surface).
void FlushDrainTelemetry(telemetry::RuntimeShard* tele,
                         const PoolStats& local) {
  if (tele == nullptr) return;
  if (local.steals > 0) {
    tele->Add(telemetry::Counter::kSteals, local.steals);
  }
  if (local.failed_steals > 0) {
    tele->Add(telemetry::Counter::kFailedSteals, local.failed_steals);
  }
  if (local.backoff_rounds > 0) {
    tele->Add(telemetry::Counter::kBackoffRounds, local.backoff_rounds);
  }
}

}  // namespace

ThreadPool::ThreadPool(int threads)
    : threads_(ResolveJobs(threads)),
      slots_(new WorkerSlot[static_cast<std::size_t>(threads_)]) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::ResolveJobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

PoolStats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void ThreadPool::MergeStats(const PoolStats& local) {
  stats_.tasks += local.tasks;
  stats_.chunks += local.chunks;
  stats_.pops += local.pops;
  stats_.steals += local.steals;
  stats_.failed_steals += local.failed_steals;
  stats_.backoff_rounds += local.backoff_rounds;
  stats_.idle_waits += local.idle_waits;
}

void ThreadPool::SeedDeques(std::size_t count) {
  const std::size_t chunk = ChunkSize(count, threads_);
  const auto t = static_cast<std::size_t>(threads_);
  for (std::size_t w = 0; w < t; ++w) {
    const std::size_t begin = count * w / t;
    const std::size_t end = count * (w + 1) / t;
    std::vector<IndexChunk>& chunks = slots_[w].seed;
    chunks.clear();
    // Highest chunk at ring slot 0 (the steal end): the owner pops the
    // other end and ascends through its block, thieves drain the far end,
    // so the two claim orders meet in the middle instead of interleaving.
    std::size_t hi = end;
    while (hi > begin) {
      const std::size_t lo = hi - begin > chunk ? hi - chunk : begin;
      chunks.push_back({lo, hi});
      hi = lo;
    }
    slots_[w].deque.Seed(chunks);
  }
}

void ThreadPool::RunIndexed(std::size_t count,
                            const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (tl_active_pool == this) {
    throw std::logic_error(
        "ThreadPool::RunIndexed re-entered from a task running on the same "
        "pool: a nested batch waits on its own worker and deadlocks at "
        "jobs>1 — run the inner batch on its own pool/BatchRunner");
  }
  if (threads_ == 1) {
    // Serial reference path: no synchronization, same results by contract.
    if (telemetry_ != nullptr) {
      telemetry_->ShardForCurrentThread()->GaugeSet(
          telemetry::Gauge::kWorkers, 1);
    }
    ActivePoolGuard guard(this);
    for (std::size_t i = 0; i < count; ++i) fn(i);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.batches;
    stats_.tasks += static_cast<std::int64_t>(count);
    return;
  }
  if (telemetry_ != nullptr) {
    telemetry_->ShardForCurrentThread()->GaugeSet(
        telemetry::Gauge::kWorkers, threads_);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    checked_out_ = 0;
    remaining_.store(count, std::memory_order_relaxed);
    SeedDeques(count);
    ++generation_;
    ++stats_.batches;
  }
  work_cv_.notify_all();
  PoolStats local;
  {
    ActivePoolGuard guard(this);
    Drain(0, fn, &local);  // the calling thread works too
  }
  std::unique_lock<std::mutex> lock(mu_);
  MergeStats(local);
  done_cv_.wait(lock, [this] { return checked_out_ == threads_ - 1; });
  job_ = nullptr;
}

void ThreadPool::Drain(int self, const std::function<void(std::size_t)>& fn,
                       PoolStats* local) {
  telemetry::RuntimeShard* const tele =
      telemetry_ != nullptr ? telemetry_->ShardForCurrentThread() : nullptr;
  // Wall-clock start of the current work hunt (first failed pop until the
  // next claimed chunk) — the steal-latency histogram's sample. -1 = not
  // hunting. Clock reads only happen off the own-deque fast path.
  std::int64_t hunt_start_ns = -1;
  int backoff = 0;
  for (;;) {
    IndexChunk c;
    bool got = slots_[static_cast<std::size_t>(self)].deque.PopBottom(&c);
    bool contended = false;
    if (got) {
      ++local->pops;
    } else {
      if (tele != nullptr && hunt_start_ns < 0) {
        hunt_start_ns = telemetry::MonotonicNowNs();
      }
      // Steal sweep: victims round-robin from the right neighbour.
      for (int k = 1; k < threads_; ++k) {
        const auto victim = static_cast<std::size_t>((self + k) % threads_);
        const WorkStealingDeque::Steal s = slots_[victim].deque.StealTop(&c);
        if (s == WorkStealingDeque::Steal::kGot) {
          got = true;
          ++local->steals;
          break;
        }
        ++local->failed_steals;
        if (s == WorkStealingDeque::Steal::kLost) contended = true;
      }
    }
    if (got) {
      if (hunt_start_ns >= 0) {
        tele->Record(telemetry::Histo::kStealNs,
                     telemetry::MonotonicNowNs() - hunt_start_ns);
        hunt_start_ns = -1;
      }
      backoff = 0;
      ++local->chunks;
      for (std::size_t i = c.begin; i < c.end; ++i) fn(i);
      const std::size_t len = c.end - c.begin;
      local->tasks += static_cast<std::int64_t>(len);
      if (remaining_.fetch_sub(len, std::memory_order_acq_rel) == len) {
        // Last chunk of the batch: wake the terminal-idle waiters. The
        // (empty) critical section pairs with their predicate check, so
        // the notify cannot slip between check and wait.
        { std::lock_guard<std::mutex> lock(mu_); }
        done_cv_.notify_all();
      }
      continue;
    }
    if (remaining_.load(std::memory_order_acquire) == 0) {
      FlushDrainTelemetry(tele, *local);
      return;
    }
    if (!contended) {
      // Own deque empty and every victim reported EMPTY (not a lost
      // race). Chunks never appear mid-batch, so that state is final:
      // block until the workers still executing drain the batch, instead
      // of spinning against them for the CPU.
      ++local->idle_waits;
      std::unique_lock<std::mutex> lock(mu_);
      done_cv_.wait(lock, [this] {
        return remaining_.load(std::memory_order_acquire) == 0;
      });
      lock.unlock();
      FlushDrainTelemetry(tele, *local);
      return;
    }
    // Lost at least one CAS race: chunks remain, retry after a capped
    // exponential backoff.
    ++local->backoff_rounds;
    backoff = backoff == 0 ? 1 : std::min(backoff * 2, kMaxBackoff);
    if (backoff >= kYieldAfter) {
      std::this_thread::yield();
    } else {
      for (int i = 0; i < backoff; ++i) CpuRelax();
    }
  }
}

void ThreadPool::WorkerLoop(int self) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    PoolStats local;
    {
      ActivePoolGuard guard(this);
      Drain(self, *job, &local);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      MergeStats(local);
      ++checked_out_;
    }
    done_cv_.notify_all();
  }
}

}  // namespace bwalloc
