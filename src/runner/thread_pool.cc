#include "runner/thread_pool.h"

namespace bwalloc {

ThreadPool::ThreadPool(int threads) : threads_(ResolveJobs(threads)) {
  workers_.reserve(static_cast<std::size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

int ThreadPool::ResolveJobs(int jobs) {
  if (jobs > 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::RunIndexed(std::size_t count,
                            const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (threads_ == 1) {
    // Serial reference path: no synchronization, same results by contract.
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    count_ = count;
    next_ = 0;
    completed_ = 0;
    ++generation_;
  }
  work_cv_.notify_all();
  DrainCurrentBatch();  // the calling thread works too
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return completed_ == count_; });
  job_ = nullptr;
}

void ThreadPool::DrainCurrentBatch() {
  for (;;) {
    std::size_t index;
    const std::function<void(std::size_t)>* job;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (job_ == nullptr || next_ >= count_) return;
      index = next_++;
      job = job_;
    }
    (*job)(index);
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++completed_;
      last = completed_ == count_;
    }
    if (last) {
      done_cv_.notify_all();
      return;
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
    }
    DrainCurrentBatch();
  }
}

}  // namespace bwalloc
