#include "runner/suite.h"

#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/multi_continuous.h"
#include "core/multi_phased.h"
#include "core/single_session.h"
#include "core/stage_trace.h"
#include "net/faults.h"
#include "net/multi_faults.h"
#include "obs/audit/auditor.h"
#include "obs/trace_sink.h"
#include "obs/tracer.h"
#include "sim/engine_multi.h"
#include "sim/engine_single.h"
#include "traffic/workload_suite.h"

namespace bwalloc {
namespace {

// Report-level cap on stored violations; the totals still count them all.
constexpr std::int64_t kMaxAuditShown = 64;

// One executed cell: its table row plus its aggregate contribution.
struct CellOutcome {
  std::vector<std::string> row;
  AggregateStats stats;
  std::string trace_ndjson;  // this cell's events; empty unless spec.trace
  std::int64_t audit_events = 0;
  std::int64_t audit_total = 0;
  std::vector<AuditViolation> audit_violations;
};

// Auditor for a single-session cell, tuned to the cell's own guarantees:
// a faulty control plane erodes the delay bound by up to two commit
// latencies even fault-free, and degraded episodes run under the
// degraded-mode bound instead.
AuditConfig SingleCellAuditConfig(const SuiteSpec& spec) {
  AuditConfig cfg =
      SingleAuditConfig(spec.ba, spec.da, spec.inv_ua, spec.window);
  cfg.modified_variant = (spec.algo == "modified");
  if (spec.fault_hops > 0) {
    cfg.delay_slack = 2 * (spec.fault_hops + spec.fault_jitter) + 2;
    cfg.degraded_delay_slack = 2 * spec.da + 64 * spec.fault_hops;
  }
  cfg.max_violations = kMaxAuditShown;
  return cfg;
}

// Auditor for a multi-session cell. Faulty cells additionally get the
// degraded-mode delay bound and the per-lane recovery-liveness monitor
// sized to one backoff-capped retry cycle.
AuditConfig MultiCellAuditConfig(const SuiteSpec& spec, std::int64_t k,
                                 Bits offline_bandwidth) {
  AuditConfig cfg = MultiAuditConfig(k, offline_bandwidth, spec.d_o,
                                     spec.multi_algo == "phased");
  if (spec.fault_hops > 0) {
    cfg.delay_slack = 2 * (spec.fault_hops + spec.fault_jitter) + 2;
    cfg.degraded_delay_slack = 8 * spec.d_o + 64 * spec.fault_hops;
    cfg.fault_recovery_bound =
        64 + 2 * (spec.fault_hops + spec.fault_jitter) + 8;
  }
  cfg.max_violations = kMaxAuditShown;
  return cfg;
}

MultiWorkloadKind ParseMultiKind(const std::string& kind) {
  if (kind == "balanced") return MultiWorkloadKind::kBalanced;
  if (kind == "rotating-hotspot") return MultiWorkloadKind::kRotatingHotspot;
  if (kind == "churn") return MultiWorkloadKind::kChurn;
  if (kind == "skewed") return MultiWorkloadKind::kSkewed;
  throw std::invalid_argument("unknown multi workload kind: " + kind);
}

CellOutcome RunSingleCell(const SuiteSpec& spec, const TaskContext& ctx) {
  const std::int64_t grid = ctx.key.index / spec.seeds;
  const std::int64_t stream = ctx.key.index % spec.seeds;
  const std::string& workload =
      spec.workloads.at(static_cast<std::size_t>(grid));

  SingleSessionParams p;
  p.max_bandwidth = spec.ba;
  p.max_delay = spec.da;
  p.min_utilization = Ratio(1, spec.inv_ua);
  p.window = spec.window;

  const auto trace =
      SingleSessionWorkload(workload, p.offline_bandwidth(), p.offline_delay(),
                            spec.horizon, ctx.seed);

  SingleSessionOnline::Variant variant;
  if (spec.algo == "online") {
    variant = SingleSessionOnline::Variant::kBase;
  } else if (spec.algo == "modified") {
    variant = SingleSessionOnline::Variant::kModified;
  } else {
    throw std::invalid_argument("unknown suite algo: " + spec.algo);
  }

  CellOutcome out;
  BufferTraceSink sink;
  std::optional<Auditor> auditor;
  std::optional<AuditingSink> audit_sink;
  if (spec.audit) {
    auditor.emplace(SingleCellAuditConfig(spec));
    audit_sink.emplace(&*auditor, spec.trace ? &sink : nullptr);
  }
  const bool observe = spec.trace || spec.audit;
  Tracer tracer;
  if (observe) {
    TraceSink* dest = spec.audit ? static_cast<TraceSink*>(&*audit_sink)
                                 : static_cast<TraceSink*>(&sink);
    const EventMask mask = spec.trace ? spec.trace_events : kAllEvents;
    tracer = Tracer(dest, mask, {spec.name, ctx.key.index});
  }
  TracerStageObserver stage_observer(tracer);

  telemetry::RuntimeShard* const tele =
      spec.telemetry != nullptr ? spec.telemetry->ShardForCurrentThread()
                                : nullptr;

  SingleEngineOptions opt;
  opt.utilization_scan_window = spec.window + 5 * p.offline_delay();
  opt.tracer = tracer;
  opt.metrics = &out.stats.metrics;
  opt.telemetry = tele;

  SingleRunResult r;
  if (spec.fault_hops > 0) {
    FaultPlan plan;
    plan.loss_rate = spec.fault_loss;
    plan.denial_rate = spec.fault_denial;
    plan.partial_grant_rate = spec.fault_partial;
    plan.max_jitter = spec.fault_jitter;
    plan.seed = SplitMix64(ctx.seed);
    RobustOptions ropts;
    ropts.fallback_bandwidth = spec.ba;
    auto inner = std::make_unique<SingleSessionOnline>(p, variant);
    if (observe) inner->SetObserver(&stage_observer);
    RobustSignalingAdapter adapter(
        std::move(inner), NetworkPath::Uniform(spec.fault_hops, 1, 1.0), plan,
        ropts);
    if (observe) adapter.SetTracer(tracer);
    if (tele != nullptr) adapter.SetTelemetry(tele);
    // Degraded runs can hold a backlog for many retry rounds; give the
    // drain tail room proportional to the retry horizon.
    opt.drain_slots = 2 * spec.da + 64 * spec.fault_hops;
    r = RunSingleSession(trace, adapter, opt);
    r.faults = adapter.fault_stats();
  } else {
    SingleSessionOnline alg(p, variant);
    if (observe) alg.SetObserver(&stage_observer);
    opt.drain_slots = 2 * spec.da;
    r = RunSingleSession(trace, alg, opt);
  }

  out.row = {workload,
             Table::Num(stream),
             Table::Num(r.delay.max_delay()),
             Table::Num(r.delay.Percentile(0.99)),
             Table::Num(r.changes),
             Table::Num(r.stages),
             Table::Num(r.worst_best_window_utilization, 3),
             Table::Num(r.global_utilization, 3)};
  if (spec.fault_hops > 0) {
    out.row.push_back(Table::Num(r.faults.losses));
    out.row.push_back(Table::Num(r.faults.denials));
    out.row.push_back(Table::Num(r.faults.retries));
    out.row.push_back(Table::Num(r.faults.fallbacks));
  }
  out.stats.Add(r);
  if (tele != nullptr) tele->Add(telemetry::Counter::kCells);
  if (spec.trace) out.trace_ndjson = sink.ToNdjson();
  if (auditor.has_value()) {
    auditor->Finish();
    out.audit_events = auditor->events();
    out.audit_total = auditor->total_violations();
    out.audit_violations = auditor->violations();
  }
  return out;
}

CellOutcome RunMultiCell(const SuiteSpec& spec, const TaskContext& ctx) {
  const std::int64_t per_kind =
      static_cast<std::int64_t>(spec.session_counts.size()) * spec.seeds;
  const std::int64_t kind_index = ctx.key.index / per_kind;
  const std::int64_t k = spec.session_counts.at(
      static_cast<std::size_t>((ctx.key.index / spec.seeds) %
                               static_cast<std::int64_t>(
                                   spec.session_counts.size())));
  const std::int64_t stream = ctx.key.index % spec.seeds;
  const std::string& kind =
      spec.kinds.at(static_cast<std::size_t>(kind_index));

  MultiSessionParams p;
  p.sessions = k;
  p.offline_bandwidth = spec.per_session_bo * k;
  p.offline_delay = spec.d_o;

  const auto traces =
      MultiSessionWorkload(ParseMultiKind(kind), k, p.offline_bandwidth,
                           p.offline_delay, spec.horizon, ctx.seed);

  CellOutcome out;
  BufferTraceSink sink;
  std::optional<Auditor> auditor;
  std::optional<AuditingSink> audit_sink;
  if (spec.audit) {
    auditor.emplace(MultiCellAuditConfig(spec, k, p.offline_bandwidth));
    audit_sink.emplace(&*auditor, spec.trace ? &sink : nullptr);
  }
  Tracer tracer;
  if (spec.trace || spec.audit) {
    TraceSink* dest = spec.audit ? static_cast<TraceSink*>(&*audit_sink)
                                 : static_cast<TraceSink*>(&sink);
    const EventMask mask = spec.trace ? spec.trace_events : kAllEvents;
    tracer = Tracer(dest, mask, {spec.name, ctx.key.index});
  }

  telemetry::RuntimeShard* const tele =
      spec.telemetry != nullptr ? spec.telemetry->ShardForCurrentThread()
                                : nullptr;

  MultiEngineOptions opt;
  opt.drain_slots = 4 * spec.d_o;
  opt.tracer = tracer;
  opt.metrics = &out.stats.metrics;
  // The engine forwards the shard to the system (and, through the robust
  // adapter, to its fault lanes and inner control model).
  opt.telemetry = tele;

  std::unique_ptr<MultiSessionSystem> sys;
  if (spec.multi_algo == "phased") {
    sys = std::make_unique<PhasedMulti>(p);
  } else if (spec.multi_algo == "continuous") {
    sys = std::make_unique<ContinuousMulti>(p);
  } else {
    throw std::invalid_argument("unknown suite multi algo: " + spec.multi_algo);
  }
  RobustMultiSessionAdapter* robust = nullptr;
  if (spec.fault_hops > 0) {
    FaultPlan plan;
    plan.loss_rate = spec.fault_loss;
    plan.denial_rate = spec.fault_denial;
    plan.partial_grant_rate = spec.fault_partial;
    plan.max_jitter = spec.fault_jitter;
    plan.seed = SplitMix64(ctx.seed);
    RobustMultiOptions mopts;
    // Fall back to the algorithm's declared total (4 B_O phased,
    // 5 B_O continuous): a RESET drain may not starve any session.
    mopts.fallback_bandwidth =
        (spec.multi_algo == "phased" ? 4 : 5) * p.offline_bandwidth;
    auto adapter = std::make_unique<RobustMultiSessionAdapter>(
        std::move(sys), NetworkPath::Uniform(spec.fault_hops, 1, 1.0), plan,
        mopts);
    robust = adapter.get();
    sys = std::move(adapter);
    // Degraded lanes can hold a backlog for many retry rounds.
    opt.drain_slots = 8 * spec.d_o + 64 * spec.fault_hops;
  }
  MultiRunResult r;
  if (spec.engine == "event") {
    r = RunMultiSessionEvent(SparseMultiTrace::FromDense(traces), *sys, opt);
  } else if (spec.engine == "naive") {
    r = RunMultiSession(traces, *sys, opt);
  } else {
    throw std::invalid_argument("unknown suite engine: " + spec.engine);
  }
  if (robust != nullptr) {
    r.faults = robust->fault_stats();
    r.per_session_faults = robust->per_session_fault_stats();
  }

  out.row = {kind,
             Table::Num(k),
             Table::Num(stream),
             Table::Num(r.delay.max_delay()),
             Table::Num(r.delay.Percentile(0.99)),
             Table::Num(r.local_changes),
             Table::Num(r.stages),
             Table::Num(r.global_utilization, 3)};
  if (spec.fault_hops > 0) {
    out.row.push_back(Table::Num(r.faults.losses));
    out.row.push_back(Table::Num(r.faults.denials));
    out.row.push_back(Table::Num(r.faults.retries));
    out.row.push_back(Table::Num(r.faults.fallbacks));
  }
  out.stats.Add(r);
  if (tele != nullptr) tele->Add(telemetry::Counter::kCells);
  if (spec.trace) out.trace_ndjson = sink.ToNdjson();
  if (auditor.has_value()) {
    auditor->Finish();
    out.audit_events = auditor->events();
    out.audit_total = auditor->total_violations();
    out.audit_violations = auditor->violations();
  }
  return out;
}

Table EmptyCellTable(const SuiteSpec& spec) {
  if (spec.kind == SuiteSpec::Kind::kSingle) {
    std::vector<std::string> cols = {"workload",   "stream", "max delay",
                                     "p99 delay",  "changes", "stages",
                                     "local util", "global util"};
    if (spec.fault_hops > 0) {
      cols.insert(cols.end(), {"losses", "denials", "retries", "fallbacks"});
    }
    return Table(cols);
  }
  std::vector<std::string> cols = {"kind",      "k",      "stream",
                                   "max delay", "p99 delay", "changes",
                                   "stages",    "global util"};
  if (spec.fault_hops > 0) {
    cols.insert(cols.end(), {"losses", "denials", "retries", "fallbacks"});
  }
  return Table(cols);
}

}  // namespace

std::int64_t SuiteSpec::CellCount() const {
  if (kind == Kind::kSingle) {
    return static_cast<std::int64_t>(workloads.size()) * seeds;
  }
  return static_cast<std::int64_t>(kinds.size()) *
         static_cast<std::int64_t>(session_counts.size()) * seeds;
}

SuiteReport RunSuite(const SuiteSpec& spec, BatchRunner& runner) {
  if (spec.seeds <= 0) throw std::invalid_argument("suite needs seeds >= 1");
  if (spec.horizon <= 0) throw std::invalid_argument("suite needs horizon >= 1");
  if (spec.fault_hops > 0) {
    FaultPlan plan;
    plan.loss_rate = spec.fault_loss;
    plan.denial_rate = spec.fault_denial;
    plan.partial_grant_rate = spec.fault_partial;
    plan.max_jitter = spec.fault_jitter;
    // Reject bad rates — including progress-impossible ones under capped
    // retries — before sharding the grid.
    plan.ValidateRecoverable();
  }

  BatchResult<CellOutcome> batch = runner.Map<CellOutcome>(
      spec.name, spec.CellCount(), [&spec](const TaskContext& ctx) {
        return spec.kind == SuiteSpec::Kind::kSingle ? RunSingleCell(spec, ctx)
                                                     : RunMultiCell(spec, ctx);
      });

  SuiteReport report{EmptyCellTable(spec), {}, std::move(batch.errors),
                     {},                  0,  0,
                     {}};
  for (std::optional<CellOutcome>& cell : batch.results) {
    if (!cell.has_value()) continue;  // failed cell, reported via errors
    report.cells.AddRow(std::move(cell->row));
    report.aggregate.Merge(cell->stats);
    report.trace_ndjson += cell->trace_ndjson;
    report.audit_events += cell->audit_events;
    report.audit_total += cell->audit_total;
    for (AuditViolation& v : cell->audit_violations) {
      if (static_cast<std::int64_t>(report.audit_violations.size()) >=
          kMaxAuditShown) {
        break;
      }
      report.audit_violations.push_back(std::move(v));
    }
  }
  return report;
}

std::string FormatReport(const SuiteSpec& spec, const SuiteReport& report,
                         bool csv) {
  std::ostringstream out;
  out << "== batch suite '" << spec.name << "' ==\n";
  if (spec.kind == SuiteSpec::Kind::kSingle) {
    out << "single-session algo=" << spec.algo << " B_A=" << spec.ba
        << " D_A=" << spec.da << " U_A=1/" << spec.inv_ua
        << " W=" << spec.window;
    if (spec.fault_hops > 0) {
      out << " faults[hops=" << spec.fault_hops << " loss="
          << Table::Num(spec.fault_loss, 3) << " denial="
          << Table::Num(spec.fault_denial, 3) << " partial="
          << Table::Num(spec.fault_partial, 3)
          << " jitter=" << spec.fault_jitter << "]";
    }
  } else {
    out << "multi-session algo=" << spec.multi_algo
        << " B_O=" << spec.per_session_bo << "*k D_O=" << spec.d_o;
    if (spec.engine != "naive") out << " engine=" << spec.engine;
    if (spec.fault_hops > 0) {
      out << " faults[hops=" << spec.fault_hops << " loss="
          << Table::Num(spec.fault_loss, 3) << " denial="
          << Table::Num(spec.fault_denial, 3) << " partial="
          << Table::Num(spec.fault_partial, 3)
          << " jitter=" << spec.fault_jitter << "]";
    }
  }
  out << " horizon=" << spec.horizon << " streams=" << spec.seeds
      << " cells=" << spec.CellCount() << "\n\n";

  if (csv) {
    report.cells.PrintCsv(out);
  } else {
    report.cells.PrintAscii(out);
  }

  const AggregateStats& a = report.aggregate;
  out << "\nmerged over " << a.tasks << " cells:\n";
  out << "  arrivals=" << a.total_arrivals << " delivered=" << a.total_delivered
      << " final_queue=" << a.final_queue << " dropped=" << a.dropped << "\n";
  out << "  changes=" << a.changes << " stages=" << a.stages
      << " changes/stage=" << a.ChangesPerStage().ToString() << "\n";
  out << "  max_delay=" << a.max_delay
      << " mean_delay=" << Table::Num(a.delay.MeanDelay(), 4) << "\n";
  out << "  global_util=" << a.GlobalUtilization().ToString() << " ("
      << Table::Num(a.GlobalUtilization().ToDouble(), 6) << ")"
      << " min_local_util=" << Table::Num(a.min_local_utilization, 6) << "\n";
  if (a.faults.any()) {
    out << "  faults: requests=" << a.faults.requests
        << " commits=" << a.faults.commits << " losses=" << a.faults.losses
        << " denials=" << a.faults.denials
        << " partial=" << a.faults.partial_grants
        << " timeouts=" << a.faults.timeouts
        << " retries=" << a.faults.retries
        << " fallbacks=" << a.faults.fallbacks << "\n";
  }
  if (!report.errors.empty()) {
    out << "failed cells: " << FormatErrors(report.errors) << "\n";
  }
  if (spec.audit) {
    out << "audit: events=" << report.audit_events
        << " violations=" << report.audit_total
        << (report.audit_total == 0 ? " (ok)" : "") << "\n";
    for (const AuditViolation& v : report.audit_violations) {
      out << "  " << FormatViolation(v) << "\n";
    }
    const std::int64_t shown =
        static_cast<std::int64_t>(report.audit_violations.size());
    if (report.audit_total > shown) {
      out << "  ... and " << (report.audit_total - shown) << " more\n";
    }
  }
  return out.str();
}

}  // namespace bwalloc
