// Order-insensitive aggregation of run results.
//
// AggregateStats is a commutative monoid: Merge is associative, the
// default-constructed value is its identity, and every field is either an
// exact integer sum, an exact min/max, or a histogram merge — no floating
// point accumulation — so a sharded reduction equals the serial one bit
// for bit. Utilization comes out as an exact Ratio built from the Q16
// integer bandwidth-time total the engines now expose.
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "sim/run_result.h"
#include "util/histogram.h"
#include "util/ratio.h"

namespace bwalloc {

struct AggregateStats {
  std::int64_t tasks = 0;

  // Exact integer sums.
  Bits total_arrivals = 0;
  Bits total_delivered = 0;
  Bits final_queue = 0;
  Bits dropped = 0;
  std::int64_t changes = 0;        // local changes for multi-session runs
  std::int64_t global_changes = 0;
  std::int64_t stages = 0;
  std::int64_t total_allocated_raw = 0;  // Q16 bandwidth-time
  FaultStats faults;  // control-plane degradation counters, exact sums

  // Exact extrema.
  Time max_delay = 0;
  Bandwidth peak_allocation;
  // Worst Lemma-5 local utilization over tasks that saw traffic (min of
  // per-task doubles: associative, no accumulation). 1.0 until observed.
  double min_local_utilization = 1.0;

  // Bit-weighted merge of every task's delay histogram.
  DelayHistogram delay;

  // Named counters/gauges/histograms the engines filled for each task.
  // Counters sum, gauges max, histograms merge — all exact, so the sharded
  // reduction stays bitwise identical.
  MetricsRegistry metrics;

  void Add(const SingleRunResult& r);
  void Add(const MultiRunResult& r);
  void Merge(const AggregateStats& other);

  // Delivered bits per allocated bit of bandwidth-time, exact. The Q16
  // denominator is folded into the numerator shift, so equal aggregates
  // compare equal as Ratios regardless of shard count. Zero when nothing
  // was allocated.
  Ratio GlobalUtilization() const;

  // Changes per completed stage, exact (stage count clamped to >= 1).
  Ratio ChangesPerStage() const;
};

bool operator==(const AggregateStats& a, const AggregateStats& b);

}  // namespace bwalloc
