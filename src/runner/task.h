// Task identity for the sharded batch runner.
//
// Every unit of work in a batch is addressed by a (suite, index) key. The
// key — never the executing thread or the submission order — determines the
// task's RNG stream, so a batch produces bitwise-identical results whether
// it runs on one thread or sixteen.
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.h"

namespace bwalloc {

struct TaskKey {
  std::string suite;
  std::int64_t index = 0;

  std::string ToString() const {
    return suite + "[" + std::to_string(index) + "]";
  }

  friend bool operator==(const TaskKey& a, const TaskKey& b) {
    return a.index == b.index && a.suite == b.suite;
  }
};

// Handed to each task body by BatchRunner::Map. `seed` is the stable
// derived stream for this key; MakeRng() is the canonical way for a task to
// obtain randomness.
struct TaskContext {
  TaskKey key;
  std::uint64_t seed = 0;

  Rng MakeRng() const { return Rng(seed); }
};

// The stable stream for task `index` of `suite`, folded with a user-chosen
// base seed (0 = the suite's default stream family).
inline std::uint64_t TaskSeed(std::string_view suite, std::int64_t index,
                              std::uint64_t base_seed = 0) {
  return DeriveStream(HashString(suite) ^ base_seed,
                      static_cast<std::uint64_t>(index));
}

// A task that failed; `message` is the exception text. Batches never abort
// on task failure — they surface the failing keys and keep going.
struct TaskError {
  TaskKey key;
  std::string message;
};

}  // namespace bwalloc
