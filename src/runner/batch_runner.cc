#include "runner/batch_runner.h"

#include <cstring>
#include <stdexcept>

namespace bwalloc {

std::string FormatErrors(const std::vector<TaskError>& errors) {
  std::string out;
  for (const TaskError& e : errors) {
    if (!out.empty()) out += "; ";
    out += "task " + e.key.ToString() + ": " + e.message;
  }
  return out;
}

int StripJobsFlag(int* argc, char** argv, int fallback) {
  static constexpr char kPrefix[] = "--jobs=";
  int jobs = fallback;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strncmp(argv[r], kPrefix, sizeof(kPrefix) - 1) == 0) {
      const char* value = argv[r] + sizeof(kPrefix) - 1;
      std::size_t pos = 0;
      const std::string text(value);
      jobs = std::stoi(text, &pos);
      if (pos != text.size() || jobs < 0) {
        throw std::invalid_argument("bad --jobs value: " + text);
      }
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return jobs;
}

}  // namespace bwalloc
