#include "runner/batch_runner.h"

#include <cstring>

#include "util/parse_num.h"

namespace bwalloc {

std::string FormatErrors(const std::vector<TaskError>& errors) {
  std::string out;
  for (const TaskError& e : errors) {
    if (!out.empty()) out += "; ";
    out += "task " + e.key.ToString() + ": " + e.message;
  }
  return out;
}

int StripJobsFlag(int* argc, char** argv, int fallback) {
  static constexpr char kPrefix[] = "--jobs=";
  int jobs = fallback;
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::strncmp(argv[r], kPrefix, sizeof(kPrefix) - 1) == 0) {
      const std::string text(argv[r] + sizeof(kPrefix) - 1);
      const std::int64_t v = ParseIntArg("flag --jobs", text);
      if (v < 0 || v > kMaxJobsFlag) {
        throw UsageError("flag --jobs: integer out of range: '" + text +
                         "' (want 0.." + std::to_string(kMaxJobsFlag) + ")");
      }
      jobs = static_cast<int>(v);
    } else {
      argv[w++] = argv[r];
    }
  }
  *argc = w;
  return jobs;
}

}  // namespace bwalloc
