// Fixed-size worker pool dispatching indexed jobs.
//
// The pool hands out task indices through an atomic cursor, so scheduling
// is dynamic (good load balance for heterogeneous tasks) while every
// artifact of a batch stays keyed by index — determinism is the caller's
// concern and is trivial under that contract. A pool of one thread runs
// jobs inline on the caller with zero synchronization, which doubles as the
// serial reference implementation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace bwalloc {

class ThreadPool {
 public:
  // `threads` >= 1; kAutoThreads picks std::thread::hardware_concurrency().
  static constexpr int kAutoThreads = 0;
  explicit ThreadPool(int threads = kAutoThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Runs fn(i) once for every i in [0, count) and blocks until all are
  // done. The calling thread participates. `fn` must be thread-safe across
  // distinct indices and must not throw (wrap bodies that can).
  void RunIndexed(std::size_t count, const std::function<void(std::size_t)>& fn);

  // The effective thread count for a requested job count (0 = auto).
  static int ResolveJobs(int jobs);

 private:
  void WorkerLoop();
  // Pulls indices from the shared cursor until the batch is exhausted.
  void DrainCurrentBatch();

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new batch
  std::condition_variable done_cv_;   // RunIndexed waits for completion
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;       // next index to hand out (guarded by mu_)
  std::size_t completed_ = 0;  // finished tasks in the current batch
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

}  // namespace bwalloc
