// Fixed-size worker pool dispatching indexed jobs via work stealing.
//
// Scheduling: the index space [0, count) is split into one contiguous
// block per worker, each block chopped into chunks seeded onto that
// worker's Chase–Lev deque (work_deque.h). Workers pop their own deque
// lock-free, ascending through their block; when it drains they steal
// chunks from victims chosen round-robin, with capped exponential backoff
// between contended sweeps. Because chunks never appear mid-batch, a
// worker whose sweep finds every deque empty (not merely contended) goes
// terminally idle: it blocks on the batch condition variable instead of
// spinning against threads that still hold work — on an oversubscribed
// machine that is the difference between stealing and starving.
//
// The pool's mutex guards only the cold batch boundaries: seeding the
// deques, the per-worker checkout that flushes each worker's scheduler
// stats in one batched merge (never per task), and the final rendezvous.
// The per-task hot path is one deque claim per CHUNK plus one atomic
// remaining-counter decrement per chunk — no locks, no shared cursor.
//
// Every artifact of a batch stays keyed by index, so determinism is the
// caller's concern and is trivial under that contract (batch_runner.h). A
// pool of one thread runs jobs inline on the caller with zero
// synchronization, which doubles as the serial reference implementation.
//
// RunIndexed must not be re-entered from a task running on the same pool:
// the nested batch would wait on workers that are themselves stuck inside
// the outer task. Re-entry is detected and fails fast with
// std::logic_error at EVERY thread count (including the serial pool,
// where it would otherwise quietly "work" and mask a jobs>1 deadlock).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/telemetry/hub.h"
#include "runner/work_deque.h"

namespace bwalloc {

// Cumulative scheduler telemetry, merged batched at worker checkout.
// Advisory counters (bench_runner reports them): scheduling-dependent,
// never part of a batch's deterministic result surface.
struct PoolStats {
  std::int64_t batches = 0;        // RunIndexed calls that dispatched work
  std::int64_t tasks = 0;          // task bodies executed
  std::int64_t chunks = 0;         // chunk claims (pops + steals)
  std::int64_t pops = 0;           // chunks taken from the worker's own deque
  std::int64_t steals = 0;         // chunks stolen from a victim
  std::int64_t failed_steals = 0;  // steal attempts that found nothing/lost
  std::int64_t backoff_rounds = 0; // contended sweeps spent in backoff
  std::int64_t idle_waits = 0;     // terminal-idle blocks (all deques drained)
};

class ThreadPool {
 public:
  // `threads` >= 1; kAutoThreads picks std::thread::hardware_concurrency().
  static constexpr int kAutoThreads = 0;
  explicit ThreadPool(int threads = kAutoThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int threads() const { return threads_; }

  // Runs fn(i) once for every i in [0, count) and blocks until all are
  // done. The calling thread participates. `fn` must be thread-safe across
  // distinct indices and must not throw (wrap bodies that can). Throws
  // std::logic_error if called from a task already running on this pool.
  void RunIndexed(std::size_t count, const std::function<void(std::size_t)>& fn);

  // The effective thread count for a requested job count (0 = auto).
  static int ResolveJobs(int jobs);

  // Snapshot of the cumulative scheduler counters (all completed batches).
  PoolStats stats() const;

  // Live telemetry hub: per-worker shards record steal/backoff counters
  // and steal-latency histograms as they happen (PoolStats stays the
  // deterministic post-batch surface). Null (the default) disables. Must
  // be set before RunIndexed and outlive the pool.
  void SetTelemetry(telemetry::TelemetryHub* hub) { telemetry_ = hub; }

 private:
  // Per-worker scheduling state, cacheline-separated so one worker's deque
  // traffic does not false-share with its neighbours'.
  struct alignas(64) WorkerSlot {
    WorkStealingDeque deque;
    std::vector<IndexChunk> seed;  // scratch for batch seeding, reused
  };

  void WorkerLoop(int self);
  // Claims and runs chunks (own deque first, then steals) until the batch
  // is exhausted; accumulates scheduler counters into `local`.
  void Drain(int self, const std::function<void(std::size_t)>& fn,
             PoolStats* local);
  // Splits [0, count) into per-worker blocks of `chunk`-sized entries and
  // seeds every deque. Caller must hold mu_.
  void SeedDeques(std::size_t count);
  // Merges one worker's batch-local counters. Caller must hold mu_.
  void MergeStats(const PoolStats& local);

  const int threads_;
  std::vector<std::thread> workers_;
  std::unique_ptr<WorkerSlot[]> slots_;

  // Tasks not yet executed in the current batch; the only hot-path shared
  // counter (one release-decrement per chunk).
  std::atomic<std::size_t> remaining_{0};

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new batch
  std::condition_variable done_cv_;   // batch-complete rendezvous
  const std::function<void(std::size_t)>* job_ = nullptr;
  int checked_out_ = 0;  // workers done with the current batch
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  PoolStats stats_;
  telemetry::TelemetryHub* telemetry_ = nullptr;
};

}  // namespace bwalloc
