// Declarative sweep suites for the batch runner.
//
// A SuiteSpec names a grid of independent simulation cells — workloads x
// seed streams for the single-session algorithms, kinds x session counts x
// seed streams for the multi-session ones. RunSuite shards the cells over
// a BatchRunner and reduces them in cell-index order into a per-cell table
// plus an AggregateStats, so the formatted report is byte-identical for
// every --jobs value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "obs/audit/violation.h"
#include "obs/trace_event.h"
#include "runner/batch_runner.h"
#include "runner/merge.h"
#include "util/types.h"

namespace bwalloc {

struct SuiteSpec {
  enum class Kind { kSingle, kMulti };

  std::string name = "batch";  // folded into every cell's RNG stream
  Kind kind = Kind::kSingle;
  std::int64_t seeds = 2;  // seed streams per grid point (task-key derived)
  Time horizon = 4000;

  // Single-session grid (kind == kSingle).
  std::vector<std::string> workloads = {"cbr", "onoff", "pareto", "mmpp",
                                        "video", "sawtooth", "mixed"};
  std::string algo = "online";  // online | modified
  Bits ba = 64;
  Time da = 16;
  std::int64_t inv_ua = 6;
  Time window = 8;

  // Unreliable control plane (both grid kinds). When fault_hops > 0 every
  // cell runs behind a RobustSignalingAdapter (single) or a
  // RobustMultiSessionAdapter with one fault lane per session (multi) over
  // a fault_hops-switch path; the FaultPlan seed derives from the cell's
  // task seed, so the grid replays bitwise at any --jobs value.
  std::int64_t fault_hops = 0;
  double fault_loss = 0.0;
  double fault_denial = 0.0;
  double fault_partial = 0.0;
  Time fault_jitter = 0;

  // Multi-session grid (kind == kMulti).
  std::vector<std::string> kinds = {"balanced", "rotating-hotspot", "churn",
                                    "skewed"};
  std::vector<std::int64_t> session_counts = {2, 4, 8};
  std::string multi_algo = "phased";  // phased | continuous
  Bits per_session_bo = 16;           // B_O = per_session_bo * k
  Time d_o = 8;
  // "naive" steps every session every slot; "event" runs the event-driven
  // engine on the sparse view of the same traces. Byte-identical by
  // contract (tests/engine_equivalence_test.cc), so reports, traces, and
  // audits match across engines at every --jobs value.
  std::string engine = "naive";  // naive | event

  // Structured event tracing. Each cell records into its own buffer;
  // RunSuite concatenates the buffers in cell-index order, so the NDJSON
  // stream is byte-identical at every --jobs value.
  bool trace = false;
  EventMask trace_events = kAllEvents;

  // Streaming theorem audit (obs/audit): every cell's event stream flows
  // through an Auditor configured from the cell's own parameters (faulty
  // cells get the degraded-mode delay bound). Works with or without
  // `trace`; when both are set the auditor sees the trace_events mask.
  bool audit = false;

  // Live telemetry hub. When set, every cell's engine, fault lanes and
  // checkpoint publishes record into the executing worker's shard.
  // Nondeterministic lane: reports, traces and audits stay byte-identical
  // with telemetry on or off, at every --jobs value.
  telemetry::TelemetryHub* telemetry = nullptr;

  // Cells = grid points x seed streams.
  std::int64_t CellCount() const;
};

struct SuiteReport {
  Table cells;  // one row per cell, cell-index order
  AggregateStats aggregate;
  std::vector<TaskError> errors;  // failed cells, index order
  // NDJSON trace of every cell, cell-index order; empty unless spec.trace.
  std::string trace_ndjson;

  // Audit tallies, merged in cell-index order; populated when spec.audit.
  std::int64_t audit_events = 0;
  std::int64_t audit_total = 0;  // all violations, including suppressed
  std::vector<AuditViolation> audit_violations;  // first kMaxAuditShown

  bool ok() const { return errors.empty() && audit_total == 0; }
};

// Runs every cell of `spec` on `runner`. Throws only on spec errors
// (unknown workload/algo names surface per-cell instead).
SuiteReport RunSuite(const SuiteSpec& spec, BatchRunner& runner);

// Renders spec + per-cell table + aggregate summary (and any per-cell
// failures) as the canonical `bwsim batch` output. Deterministic: equal
// reports format to equal bytes.
std::string FormatReport(const SuiteSpec& spec, const SuiteReport& report,
                         bool csv);

}  // namespace bwalloc
