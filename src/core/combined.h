// The combined algorithm (Section 4): k sessions, shared dynamic total
// bandwidth, per-session delay bound and aggregate utilization bound.
//
// Structure: GLOBAL stages x LOCAL stages.
//
//   * Global trackers run the single-session envelopes (low/high) over the
//     AGGREGATE arrival stream with the offline parameters (D_O, U_O).
//     B_on — the smallest power of two >= low(t) — tracks the offline
//     server's total bandwidth and plays the role of B_O inside the
//     multi-session machinery. B_on is monotone within a global stage, so
//     global changes per global stage <= log2(2 B_O) (and every completed
//     global stage certifies one offline change of total bandwidth).
//   * A local stage is one stage of the multi-session algorithm — phased
//     (Fig. 4) or continuous (Fig. 5), per CombinedParams — run with
//     parameter B_on. It ends when (1) a GLOBAL RESET starts, (2) B_on
//     changes, or (3) the total regular allocation exceeds 2 B_on. Every
//     completed local stage certifies one offline per-session change; the
//     online pays O(k) local changes per local stage.
//   * GLOBAL RESET (high < low): every session queue is shunted into a
//     global overflow queue served by a dedicated channel of size 2 B_O,
//     and — unlike the single-session RESET — a new global stage starts
//     immediately.
//
// Resource bounds: regular channel <= 2 B_on <= 4 B_O, session overflow
// channel <= 2 B_on <= ~2 B_O in steady state, global overflow channel
// 2 B_O, for a total within B_A = 7 B_O. Delay <= 2 D_O; utilization
// >= U_O / 3. Section 4 of the paper is a sketch; DESIGN.md records the
// interpretation choices.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/high_tracker.h"
#include "core/low_tracker.h"
#include "core/params.h"
#include "obs/tracer.h"
#include "sim/bit_queue.h"
#include "sim/engine_multi.h"
#include "sim/hot_set.h"
#include "sim/session_channels.h"
#include "sim/timer_wheel.h"
#include "state/serializer.h"
#include "util/fixed_point.h"
#include "util/histogram.h"
#include "util/types.h"

namespace bwalloc {

class CombinedOnline final : public MultiSessionSystem {
 public:
  explicit CombinedOnline(
      const CombinedParams& params,
      ServiceDiscipline discipline = ServiceDiscipline::kTwoChannel);

  void Step(Time now, std::span<const Bits> arrivals) override;
  // Event-driven path: the global trackers need only the slot's aggregate
  // demand (an O(1) sum over the sparse arrivals); the inner machinery
  // touches the hot set, except that a share change (B_on level change or
  // GLOBAL RESET) re-runs the full-k local-stage start, exactly where the
  // naive path changes every session's value anyway. Behaviorally
  // identical to Step (differentially tested).
  bool SupportsSparseStep() const override { return true; }
  void StepSparse(Time now,
                  std::span<const SessionArrival> arrivals) override;
  void PerturbEventWakeupsForTest() override { perturb_wakeups_ = 1; }
  const SessionChannels& channels() const override { return channels_; }

  // Completed local stages (offline per-session-change lower bound).
  std::int64_t stages() const override { return completed_local_stages_; }
  // Completed global stages (offline total-change lower bound).
  std::int64_t global_stages() const override {
    return completed_global_stages_;
  }

  // The inner channels (4 B_on phased / 5 B_on continuous) + 2 B_O (global
  // overflow channel): the reserved total whose transitions are the
  // "global changes".
  Bandwidth DeclaredTotalBandwidth() const override {
    return Bandwidth::FromBitsPerSlot(
        (params_.continuous_inner ? 5 : 4) * b_on_ +
        2 * params_.offline_bandwidth);
  }

  Bandwidth ExtraAllocatedBandwidth() const override { return global_bw_; }
  Bits ExtraQueuedBits() const override { return global_queue_.size(); }
  Bits ExtraDeliveredBits() const override { return global_delivered_; }
  const DelayHistogram* ExtraDelayHistogram() const override {
    return &global_delay_;
  }

  // Introspection for tests.
  Bits b_on() const { return b_on_; }
  Bits peak_global_queue() const { return peak_global_queue_; }

  void SetTracer(const Tracer& tracer) override { tracer_ = tracer; }
  void SetTelemetry(telemetry::RuntimeShard* shard) override {
    reduce_wheel_.SetTelemetry(shard);
  }

  // --- dynamic churn --------------------------------------------------------
  // Inactive sessions are skipped by every local-stage, phase-boundary, and
  // GLOBAL RESET loop (dense and sparse alike), and Quiescent() reports
  // them quiescent so the hot set sheds them. A joining session starts at
  // the *current* share_ with empty queues — the quiescent fixed point —
  // and departure cancels any outstanding continuous-inner REDUCE leases.
  bool SupportsChurn() const override { return true; }
  void OnSessionJoin(Time now, std::int64_t session) override;
  Bits OnSessionDepart(Time now, std::int64_t session) override;

  // --- checkpoint/restore ---------------------------------------------------
  bool SupportsCheckpoint() const override { return true; }

  void SaveState(StateWriter& w) const override {
    w.Tag("CMB1");
    channels_.SaveState(w);
    low_tracker_.SaveState(w);
    high_tracker_.SaveState(w);
    w.I64(b_on_);
    w.I64(share_.raw());
    w.I64(next_phase_);
    w.Bool(started_);
    global_queue_.SaveState(w);
    w.I64(global_bw_.raw());
    w.I64(global_delivered_);
    global_delay_.SaveState(w);
    w.I64(peak_global_queue_);
    w.I64(completed_local_stages_);
    w.I64(completed_global_stages_);
    w.U64(reductions_.size());
    for (const auto& [due, list] : reductions_) {
      w.I64(due);
      w.U64(list.size());
      for (const Reduction& red : list) {
        w.I64(red.session);
        w.I64(red.amount.raw());
      }
    }
    reduce_wheel_.SaveState(w, [](StateWriter& sw, const Reduction& red) {
      sw.I64(red.session);
      sw.I64(red.amount.raw());
    });
    hot_.SaveState(w);
    w.U8(static_cast<std::uint8_t>(mode_));
    for (const char a : active_) w.Bool(a != 0);
  }

  void LoadState(StateReader& r) override {
    r.Tag("CMB1");
    channels_.LoadState(r);
    low_tracker_.LoadState(r);
    high_tracker_.LoadState(r);
    b_on_ = r.I64();
    share_ = Bandwidth::FromRaw(r.I64());
    next_phase_ = r.I64();
    started_ = r.Bool();
    global_queue_.LoadState(r);
    global_bw_ = Bandwidth::FromRaw(r.I64());
    global_delivered_ = r.I64();
    global_delay_.LoadState(r);
    peak_global_queue_ = r.I64();
    completed_local_stages_ = r.I64();
    completed_global_stages_ = r.I64();
    reductions_.clear();
    const std::uint64_t n_slots = r.Count(std::uint64_t{1} << 32);
    for (std::uint64_t s = 0; s < n_slots; ++s) {
      const Time due = r.I64();
      auto& list = reductions_[due];
      list.resize(r.Count(std::uint64_t{1} << 32));
      for (Reduction& red : list) {
        red.session = r.I64();
        red.amount = Bandwidth::FromRaw(r.I64());
      }
    }
    reduce_wheel_.LoadState(r, [](StateReader& sr, Reduction& red) {
      red.session = sr.I64();
      red.amount = Bandwidth::FromRaw(sr.I64());
    });
    hot_.LoadState(r);
    mode_ = static_cast<StepMode>(r.U8());
    for (char& a : active_) a = r.Bool() ? 1 : 0;
  }

 private:
  enum class StepMode { kNone, kDense, kSparse };

  void StartGlobalStage(Time ts);
  void StartLocalStage(Time now, bool shunt_regular);
  void PhaseBoundary(Time now);
  void ContinuousTest(Time now, std::int64_t i);
  void ShuntWithLease(Time now, std::int64_t i);
  void ApplyReductions(Time now);
  bool RegularOverloaded(std::int64_t i) const;
  void GlobalReset(Time now);
  void StartLocalStageEvent(Time now, bool shunt_regular);
  void PhaseBoundaryEvent(Time now);
  void ContinuousTestEvent(Time now, std::int64_t i);
  void ShuntWithLeaseEvent(Time now, std::int64_t i);
  void GlobalResetEvent(Time now);
  bool Quiescent(std::int64_t i) const;

  bool Active(std::int64_t i) const {
    return active_[static_cast<std::size_t>(i)] != 0;
  }

  CombinedParams params_;
  SessionChannels channels_;
  LowTracker low_tracker_;
  HighTracker high_tracker_;

  Bits b_on_ = 0;          // current power-of-two total-bandwidth estimate
  Bandwidth share_;        // B_on / k
  Time next_phase_ = 0;
  bool started_ = false;

  BitQueue global_queue_;  // GLOBAL RESET overflow queue
  Bandwidth global_bw_;    // 2 B_O while the global queue is non-empty
  Bits global_delivered_ = 0;
  DelayHistogram global_delay_;
  Bits peak_global_queue_ = 0;

  std::int64_t completed_local_stages_ = 0;
  std::int64_t completed_global_stages_ = 0;
  Tracer tracer_;          // disabled unless SetTracer was called

  // Continuous-inner lease timers (Fig. 5's REDUCE).
  struct Reduction {
    std::int64_t session;
    Bandwidth amount;
  };
  // Dense path keeps the original map-of-slots; the sparse path schedules
  // the same reductions on a timer wheel (one wakeup per lease).
  std::map<Time, std::vector<Reduction>> reductions_;
  TimerWheel<Reduction> reduce_wheel_;
  HotSet hot_;                 // sparse path: candidate non-quiescent sessions
  std::vector<char> active_;   // churn mask; all 1 for fixed populations
  Time perturb_wakeups_ = 0;   // test hook: delays boundaries / REDUCEs
  StepMode mode_ = StepMode::kNone;  // dense/sparse must never mix
};

}  // namespace bwalloc
