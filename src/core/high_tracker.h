// Incremental computation of the utilization envelope high(t) (Section 2).
//
//   high(t) = B_A                                    for t <  t_s + W
//   high(t) = (1 / (U_O * W)) * min_{t_s+W <= t' <= t} IN(t'-W, t']
//                                                     for t >= t_s + W.
//
// Under the assumption that the offline algorithm kept one bandwidth value
// since t_s, high(t) is an upper bound on that value: allocating more than
// high(t) would push some full W-window's utilization below U_O.
//
// The minimum ranges over ALL t' since t_s + W (a running minimum, not a
// sliding one); only the W-window sum itself slides. The paper's window
// convention IN(t'-W, t'] covers slots t'-W+1 .. t' — slot t_s itself is
// never inside any high window.
//
// Call protocol per slot t: RecordArrivals(t, bits of slot t) first, then
// HighAt(t) — high(t) includes slot-t arrivals by the closed-right
// convention (opposite order from LowTracker; SingleSessionOnline sequences
// both correctly).
#pragma once

#include <deque>

#include "state/serializer.h"
#include "util/assert.h"
#include "util/monotonic_deque.h"
#include "util/ratio.h"
#include "util/types.h"

namespace bwalloc {

class HighTracker {
 public:
  HighTracker(Time window, Ratio offline_utilization, Bits max_bandwidth)
      : window_(window),
        u_o_(offline_utilization),
        max_bandwidth_(max_bandwidth) {
    BW_REQUIRE(window >= 1, "HighTracker: W must be >= 1");
    BW_REQUIRE(offline_utilization.num() > 0, "HighTracker: U_O must be > 0");
    BW_REQUIRE(max_bandwidth >= 1, "HighTracker: B_A must be >= 1");
  }

  void StartStage(Time ts) {
    ts_ = ts;
    next_slot_ = ts;
    recent_.clear();
    window_sum_ = 0;
    run_min_.Reset();
  }

  // Record the arrivals of slot t (in order, once per slot).
  void RecordArrivals(Time t, Bits bits) {
    BW_CHECK(t == next_slot_, "HighTracker: slots must be visited in order");
    BW_REQUIRE(bits >= 0, "HighTracker: negative arrivals");
    recent_.push_back(bits);
    window_sum_ += bits;
    if (static_cast<Time>(recent_.size()) > window_) {
      window_sum_ -= recent_.front();
      recent_.pop_front();
    }
    if (t >= ts_ + window_) {
      // Full window (t-W, t] available: slots t-W+1 .. t.
      run_min_.Push(window_sum_);
    }
    ++next_slot_;
  }

  // Is high(t) the bounded (post-W) value yet?
  bool Bounded() const { return run_min_.has_value(); }

  // high(t) after RecordArrivals(t, .). Returns B_A while unbounded.
  Ratio HighAt() const {
    if (!run_min_.has_value()) return Ratio(max_bandwidth_, 1);
    // run_min / (U_O * W)  =  run_min * U_O.den / (U_O.num * W)
    return Ratio(run_min_.value() * u_o_.den(), u_o_.num() * window_);
  }

  void SaveState(StateWriter& w) const {
    w.Tag("HIG1");
    w.I64(ts_);
    w.I64(next_slot_);
    w.U64(recent_.size());
    for (const Bits b : recent_) w.I64(b);
    w.I64(window_sum_);
    run_min_.SaveState(w);
  }

  void LoadState(StateReader& r) {
    r.Tag("HIG1");
    ts_ = r.I64();
    next_slot_ = r.I64();
    recent_.assign(r.Count(static_cast<std::uint64_t>(window_)), 0);
    for (Bits& b : recent_) b = r.I64();
    window_sum_ = r.I64();
    run_min_.LoadState(r);
  }

 private:
  Time window_;
  Ratio u_o_;
  Bits max_bandwidth_;
  Time ts_ = 0;
  Time next_slot_ = 0;
  std::deque<Bits> recent_;
  Bits window_sum_ = 0;
  RunningMin<Bits> run_min_;
};

// Global-utilization variant of the envelope (the paper's Section 2
// "Utilization" discussion and the closing remarks of the section: the
// algorithm "would have the same performance also under global
// utilization", with competitive ratio Theta(log B_A) — the log B_A lower
// bound only holds in this mode).
//
//   high_g(t) = IN(t_s, t] / (U_O * (t - t_s + 1)),
//
// the largest bandwidth an offline algorithm could have held since t_s
// without dropping the stage-scoped global utilization below U_O. Unlike
// the windowed high(t) it is NOT monotone (it recovers when traffic
// resumes), exactly why a single early lull cannot end the stage.
class GlobalHighTracker {
 public:
  GlobalHighTracker(Ratio offline_utilization, Bits max_bandwidth)
      : u_o_(offline_utilization), max_bandwidth_(max_bandwidth) {
    BW_REQUIRE(offline_utilization.num() > 0,
               "GlobalHighTracker: U_O must be > 0");
    BW_REQUIRE(max_bandwidth >= 1, "GlobalHighTracker: B_A must be >= 1");
  }

  void StartStage(Time ts) {
    ts_ = ts;
    next_slot_ = ts;
    cum_ = 0;
  }

  void RecordArrivals(Time t, Bits bits) {
    BW_CHECK(t == next_slot_,
             "GlobalHighTracker: slots must be visited in order");
    BW_REQUIRE(bits >= 0, "GlobalHighTracker: negative arrivals");
    cum_ += bits;
    last_ = t;
    ++next_slot_;
  }

  // high_g(t) after RecordArrivals(t, .). Returns B_A while the stage is
  // empty of arrivals (no constraint yet).
  Ratio HighAt() const {
    if (cum_ == 0) return Ratio(max_bandwidth_, 1);
    return Ratio(cum_ * u_o_.den(), u_o_.num() * (last_ - ts_ + 1));
  }

  void SaveState(StateWriter& w) const {
    w.Tag("GHI1");
    w.I64(ts_);
    w.I64(next_slot_);
    w.I64(last_);
    w.I64(cum_);
  }

  void LoadState(StateReader& r) {
    r.Tag("GHI1");
    ts_ = r.I64();
    next_slot_ = r.I64();
    last_ = r.I64();
    cum_ = r.I64();
  }

 private:
  Ratio u_o_;
  Bits max_bandwidth_;
  Time ts_ = 0;
  Time next_slot_ = 0;
  Time last_ = 0;
  Bits cum_ = 0;
};

}  // namespace bwalloc
