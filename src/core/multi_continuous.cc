#include "core/multi_continuous.h"

#include "util/assert.h"

namespace bwalloc {

ContinuousMulti::ContinuousMulti(const MultiSessionParams& params,
                                 ServiceDiscipline discipline)
    : params_(params),
      channels_(params.sessions, discipline),
      reduce_wheel_(params.offline_delay + 2),
      hot_(params.sessions),
      active_(static_cast<std::size_t>(params.sessions), 1) {
  params_.Validate();
  shares_.reserve(static_cast<std::size_t>(params_.sessions));
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    shares_.push_back(params_.Share(i));
  }
  two_b_o_ = Bandwidth::FromBitsPerSlot(2 * params_.offline_bandwidth);
}

bool ContinuousMulti::RegularOverloaded(std::int64_t i) const {
  const Int128 lhs = static_cast<Int128>(channels_.regular_queue_size(i))
                       << Bandwidth::kShift;
  const Int128 rhs = static_cast<Int128>(channels_.regular_bw(i).raw()) *
                       params_.offline_delay;
  return lhs > rhs;
}

void ContinuousMulti::Reset(Time now) {
  tracer_.Emit(TraceEventType::kStageStart, now, -1, completed_stages_);
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    if (!Active(i)) continue;
    channels_.SetRegular(i, shares_[static_cast<std::size_t>(i)]);
  }
}

void ContinuousMulti::ShuntToOverflow(Time now, std::int64_t i) {
  const Bits q = channels_.regular_queue_size(i);
  if (q == 0) return;
  tracer_.Emit(TraceEventType::kOverflowShunt, now, i, q);
  channels_.MoveRegularToOverflow(i);
  const Bandwidth lease = Bandwidth::CeilDiv(q, params_.offline_delay);
  channels_.AddOverflow(i, lease);
  reductions_[now + params_.offline_delay].push_back({i, lease});
}

void ContinuousMulti::Test(Time now, std::int64_t i) {
  if (!RegularOverloaded(i)) return;
  channels_.SetRegular(i, channels_.regular_bw(i) +
                           shares_[static_cast<std::size_t>(i)]);
  ShuntToOverflow(now, i);
  if (channels_.TotalRegular() > two_b_o_) {
    // Stage end: shunt every regular queue and RESET.
    for (std::int64_t j = 0; j < params_.sessions; ++j) {
      ShuntToOverflow(now, j);
    }
    tracer_.Emit(TraceEventType::kStageCertified, now, -1, completed_stages_);
    ++completed_stages_;
    Reset(now);
  }
}

void ContinuousMulti::ApplyReductions(Time now) {
  const auto it = reductions_.find(now);
  if (it == reductions_.end()) return;
  for (const Reduction& r : it->second) {
    channels_.AddOverflow(r.session, Bandwidth::Zero() - r.amount);
  }
  reductions_.erase(it);
}

void ContinuousMulti::Step(Time now, std::span<const Bits> arrivals) {
  BW_REQUIRE(static_cast<std::int64_t>(arrivals.size()) == params_.sessions,
             "ContinuousMulti::Step: arrival vector size mismatch");
  BW_CHECK(mode_ != StepMode::kSparse,
           "ContinuousMulti: dense Step after sparse stepping");
  mode_ = StepMode::kDense;
  if (!started_) {
    started_ = true;
    Reset(now);
  }
  ApplyReductions(now);
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    const Bits in = arrivals[static_cast<std::size_t>(i)];
    channels_.Enqueue(i, now, in);
    if (in > 0) Test(now, i);
  }
  channels_.ServeSlot(now);
}

void ContinuousMulti::OnSessionJoin(Time /*now*/, std::int64_t session) {
  active_[static_cast<std::size_t>(session)] = 1;
  // Mid-run join: hand the session its share directly, as the stage's
  // RESET would have. Pre-run joins wait for the initial RESET instead.
  if (started_) {
    channels_.SetRegular(session, shares_[static_cast<std::size_t>(session)]);
  }
}

Bits ContinuousMulti::OnSessionDepart(Time /*now*/, std::int64_t session) {
  active_[static_cast<std::size_t>(session)] = 0;
  channels_.SetRegular(session, Bandwidth::Zero());
  channels_.SetOverflow(session, Bandwidth::Zero());
  // Outstanding REDUCE leases must never fire for a departed session —
  // the overflow allocation they would return was just zeroed. Both lease
  // stores are swept; only the one matching the step mode is non-empty.
  for (auto it = reductions_.begin(); it != reductions_.end();) {
    std::erase_if(it->second, [session](const Reduction& red) {
      return red.session == session;
    });
    it = it->second.empty() ? reductions_.erase(it) : std::next(it);
  }
  reduce_wheel_.CancelWhere(
      [session](const Reduction& red) { return red.session == session; });
  return channels_.DropSession(session);
}

// --- event-driven path -------------------------------------------------------
//
// Fig. 5 is already event-shaped: TEST fires only on arrivals, REDUCE is a
// per-session timer. The sparse path schedules each lease on the timer
// wheel instead of the slot map, and the two O(k) loops — stage-end shunts
// and RESET — run over the sorted hot set only. A session outside the hot
// set has empty queues (ShuntToOverflow would early-return), zero overflow
// allocation, and regular allocation equal to its share (RESET would
// rewrite an identical value), so skipping it changes nothing.

bool ContinuousMulti::Quiescent(std::int64_t i) const {
  if (!Active(i)) return true;
  return channels_.regular_queue_size(i) == 0 &&
         channels_.overflow_queue_size(i) == 0 &&
         channels_.overflow_bw(i).raw() == 0 &&
         channels_.regular_bw(i).raw() ==
             shares_[static_cast<std::size_t>(i)].raw();
}

void ContinuousMulti::ResetEvent(Time now) {
  tracer_.Emit(TraceEventType::kStageStart, now, -1, completed_stages_);
  for (const std::int64_t i : hot_.items()) {
    if (!Active(i)) continue;
    channels_.SetRegular(i, shares_[static_cast<std::size_t>(i)]);
  }
}

void ContinuousMulti::ShuntToOverflowEvent(Time now, std::int64_t i) {
  const Bits q = channels_.regular_queue_size(i);
  if (q == 0) return;
  tracer_.Emit(TraceEventType::kOverflowShunt, now, i, q);
  channels_.MoveRegularToOverflow(i);
  const Bandwidth lease = Bandwidth::CeilDiv(q, params_.offline_delay);
  channels_.AddOverflow(i, lease);
  reduce_wheel_.ScheduleAt(now + params_.offline_delay + perturb_wakeups_,
                           {i, lease});
}

void ContinuousMulti::TestEvent(Time now, std::int64_t i) {
  if (!RegularOverloaded(i)) return;
  channels_.SetRegular(i, channels_.regular_bw(i) +
                           shares_[static_cast<std::size_t>(i)]);
  ShuntToOverflowEvent(now, i);
  if (channels_.TotalRegular() > two_b_o_) {
    // Stage end: shunt every nonempty regular queue (all in the hot set)
    // in ascending session order, exactly like the naive 0..k-1 loop.
    hot_.SortAscending();
    for (const std::int64_t j : hot_.items()) {
      ShuntToOverflowEvent(now, j);
    }
    tracer_.Emit(TraceEventType::kStageCertified, now, -1, completed_stages_);
    ++completed_stages_;
    ResetEvent(now);
    hot_.FilterInPlace([&](std::int64_t s) { return !Quiescent(s); });
  }
}

void ContinuousMulti::StepSparse(Time now,
                                 std::span<const SessionArrival> arrivals) {
  BW_CHECK(mode_ != StepMode::kDense,
           "ContinuousMulti: sparse Step after dense stepping");
  mode_ = StepMode::kSparse;
  if (!started_) {
    started_ = true;
    Reset(now);  // first RESET touches all k, like the naive path
  }
  reduce_wheel_.PopDue(now, [&](const Reduction& r) {
    channels_.AddOverflow(r.session, Bandwidth::Zero() - r.amount);
  });
  for (const SessionArrival& a : arrivals) {
    channels_.Enqueue(a.session, now, a.bits);
    if (a.bits > 0) {
      hot_.Add(a.session);
      TestEvent(now, a.session);
    }
  }
  channels_.ServeActiveSlot(now);
}

}  // namespace bwalloc
