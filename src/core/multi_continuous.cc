#include "core/multi_continuous.h"

#include "util/assert.h"

namespace bwalloc {

ContinuousMulti::ContinuousMulti(const MultiSessionParams& params,
                                 ServiceDiscipline discipline)
    : params_(params), channels_(params.sessions, discipline) {
  params_.Validate();
  shares_.reserve(static_cast<std::size_t>(params_.sessions));
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    shares_.push_back(params_.Share(i));
  }
  two_b_o_ = Bandwidth::FromBitsPerSlot(2 * params_.offline_bandwidth);
}

bool ContinuousMulti::RegularOverloaded(std::int64_t i) const {
  const Int128 lhs = static_cast<Int128>(channels_.regular_queue_size(i))
                       << Bandwidth::kShift;
  const Int128 rhs = static_cast<Int128>(channels_.regular_bw(i).raw()) *
                       params_.offline_delay;
  return lhs > rhs;
}

void ContinuousMulti::Reset(Time now) {
  tracer_.Emit(TraceEventType::kStageStart, now, -1, completed_stages_);
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    channels_.SetRegular(i, shares_[static_cast<std::size_t>(i)]);
  }
}

void ContinuousMulti::ShuntToOverflow(Time now, std::int64_t i) {
  const Bits q = channels_.regular_queue_size(i);
  if (q == 0) return;
  tracer_.Emit(TraceEventType::kOverflowShunt, now, i, q);
  channels_.MoveRegularToOverflow(i);
  const Bandwidth lease = Bandwidth::CeilDiv(q, params_.offline_delay);
  channels_.AddOverflow(i, lease);
  reductions_[now + params_.offline_delay].push_back({i, lease});
}

void ContinuousMulti::Test(Time now, std::int64_t i) {
  if (!RegularOverloaded(i)) return;
  channels_.SetRegular(i, channels_.regular_bw(i) +
                           shares_[static_cast<std::size_t>(i)]);
  ShuntToOverflow(now, i);
  if (channels_.TotalRegular() > two_b_o_) {
    // Stage end: shunt every regular queue and RESET.
    for (std::int64_t j = 0; j < params_.sessions; ++j) {
      ShuntToOverflow(now, j);
    }
    tracer_.Emit(TraceEventType::kStageCertified, now, -1, completed_stages_);
    ++completed_stages_;
    Reset(now);
  }
}

void ContinuousMulti::ApplyReductions(Time now) {
  const auto it = reductions_.find(now);
  if (it == reductions_.end()) return;
  for (const Reduction& r : it->second) {
    channels_.AddOverflow(r.session, Bandwidth::Zero() - r.amount);
  }
  reductions_.erase(it);
}

void ContinuousMulti::Step(Time now, std::span<const Bits> arrivals) {
  BW_REQUIRE(static_cast<std::int64_t>(arrivals.size()) == params_.sessions,
             "ContinuousMulti::Step: arrival vector size mismatch");
  if (!started_) {
    started_ = true;
    Reset(now);
  }
  ApplyReductions(now);
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    const Bits in = arrivals[static_cast<std::size_t>(i)];
    channels_.Enqueue(i, now, in);
    if (in > 0) Test(now, i);
  }
  channels_.ServeSlot(now);
}

}  // namespace bwalloc
