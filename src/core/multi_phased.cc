#include "core/multi_phased.h"

#include "util/assert.h"

namespace bwalloc {

PhasedMulti::PhasedMulti(const MultiSessionParams& params,
                         ServiceDiscipline discipline)
    : params_(params),
      channels_(params.sessions, discipline),
      hot_(params.sessions),
      active_(static_cast<std::size_t>(params.sessions), 1) {
  params_.Validate();
  shares_.reserve(static_cast<std::size_t>(params_.sessions));
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    shares_.push_back(params_.Share(i));
  }
  two_b_o_ = Bandwidth::FromBitsPerSlot(2 * params_.offline_bandwidth);
}

bool PhasedMulti::RegularOverloaded(std::int64_t i) const {
  // |Q_r| > B_r * D_O  <=>  |Q_r| << 16  >  raw(B_r) * D_O.
  const Int128 lhs = static_cast<Int128>(channels_.regular_queue_size(i))
                       << Bandwidth::kShift;
  const Int128 rhs = static_cast<Int128>(channels_.regular_bw(i).raw()) *
                       params_.offline_delay;
  return lhs > rhs;
}

void PhasedMulti::Reset(Time now) {
  tracer_.Emit(TraceEventType::kStageStart, now, -1, completed_stages_);
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    if (!Active(i)) continue;
    channels_.SetRegular(i, shares_[static_cast<std::size_t>(i)]);
  }
  next_phase_ = now + params_.offline_delay;
}

void PhasedMulti::PhaseBoundary(Time now) {
  const bool trace_shunts = tracer_.enabled(TraceEventType::kOverflowShunt);
  std::int64_t overloaded = 0;
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    if (!Active(i)) continue;
    if (!RegularOverloaded(i)) {
      // Lemma-8 invariant: the previous phase's overflow allocation was
      // sized to drain the overflow queue within the phase.
      BW_CHECK(channels_.overflow_queue_size(i) == 0,
               "overflow queue not drained at phase boundary");
      channels_.SetOverflow(i, Bandwidth::Zero());
    } else {
      ++overloaded;
      channels_.SetRegular(i, channels_.regular_bw(i) +
                               shares_[static_cast<std::size_t>(i)]);
      if (trace_shunts) {
        tracer_.Emit(TraceEventType::kOverflowShunt, now, i,
                     channels_.regular_queue_size(i));
      }
      channels_.MoveRegularToOverflow(i);
      channels_.SetOverflow(
          i, Bandwidth::CeilDiv(channels_.overflow_queue_size(i),
                                params_.offline_delay));
    }
  }
  tracer_.Emit(TraceEventType::kPhaseBoundary, now, -1, overloaded);
  if (channels_.TotalRegular() > two_b_o_) {
    // Stage end: shunt everything to the overflow channel and RESET.
    for (std::int64_t i = 0; i < params_.sessions; ++i) {
      if (!Active(i)) continue;
      if (trace_shunts && channels_.regular_queue_size(i) > 0) {
        tracer_.Emit(TraceEventType::kOverflowShunt, now, i,
                     channels_.regular_queue_size(i));
      }
      channels_.MoveRegularToOverflow(i);
      channels_.SetOverflow(
          i, Bandwidth::CeilDiv(channels_.overflow_queue_size(i),
                                params_.offline_delay));
    }
    tracer_.Emit(TraceEventType::kStageCertified, now, -1, completed_stages_);
    ++completed_stages_;
    Reset(now);
  }
}

void PhasedMulti::Step(Time now, std::span<const Bits> arrivals) {
  BW_REQUIRE(static_cast<std::int64_t>(arrivals.size()) == params_.sessions,
             "PhasedMulti::Step: arrival vector size mismatch");
  BW_CHECK(mode_ != StepMode::kSparse,
           "PhasedMulti: dense Step after sparse stepping");
  mode_ = StepMode::kDense;
  if (!started_) {
    started_ = true;
    Reset(now);
  } else if (now == next_phase_) {
    PhaseBoundary(now);
    if (now == next_phase_) next_phase_ = now + params_.offline_delay;
  }
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    channels_.Enqueue(i, now, arrivals[static_cast<std::size_t>(i)]);
  }
  channels_.ServeSlot(now);
}

void PhasedMulti::OnSessionJoin(Time /*now*/, std::int64_t session) {
  active_[static_cast<std::size_t>(session)] = 1;
  // Mid-run join: hand the session its share directly, as the stage's
  // RESET would have. Pre-run joins wait for the initial RESET instead.
  if (started_) {
    channels_.SetRegular(session, shares_[static_cast<std::size_t>(session)]);
  }
}

Bits PhasedMulti::OnSessionDepart(Time /*now*/, std::int64_t session) {
  active_[static_cast<std::size_t>(session)] = 0;
  channels_.SetRegular(session, Bandwidth::Zero());
  channels_.SetOverflow(session, Bandwidth::Zero());
  // The session stays in the hot set until the next boundary's quiescence
  // sweep; every action there skips inactive sessions, so it is inert.
  return channels_.DropSession(session);
}

// --- event-driven path -------------------------------------------------------
//
// Why the hot set is exact, not heuristic: a session outside it has empty
// queues (no arrival since it last drained), zero overflow allocation, and
// regular allocation equal to its share. For such a session every phase-
// boundary action is a value-preserving no-op — RegularOverloaded is false
// (|Q_r| = 0), SetOverflow(0) rewrites the existing zero, the stage-end
// shunt moves nothing and re-sizes the overflow rate from 0 to 0, and
// RESET rewrites share with share. The naive loop over 0..k-1 therefore
// degenerates to the loop over the sorted hot set, event for event.

bool PhasedMulti::Quiescent(std::int64_t i) const {
  if (!Active(i)) return true;
  return channels_.regular_queue_size(i) == 0 &&
         channels_.overflow_queue_size(i) == 0 &&
         channels_.overflow_bw(i).raw() == 0 &&
         channels_.regular_bw(i).raw() ==
             shares_[static_cast<std::size_t>(i)].raw();
}

void PhasedMulti::ResetEvent(Time now) {
  tracer_.Emit(TraceEventType::kStageStart, now, -1, completed_stages_);
  for (const std::int64_t i : hot_.items()) {
    if (!Active(i)) continue;
    channels_.SetRegular(i, shares_[static_cast<std::size_t>(i)]);
  }
  next_phase_ = now + params_.offline_delay;
}

void PhasedMulti::PhaseBoundaryEvent(Time now) {
  const bool trace_shunts = tracer_.enabled(TraceEventType::kOverflowShunt);
  hot_.SortAscending();
  std::int64_t overloaded = 0;
  for (const std::int64_t i : hot_.items()) {
    if (!Active(i)) continue;
    if (!RegularOverloaded(i)) {
      BW_CHECK(channels_.overflow_queue_size(i) == 0,
               "overflow queue not drained at phase boundary");
      channels_.SetOverflow(i, Bandwidth::Zero());
    } else {
      ++overloaded;
      channels_.SetRegular(i, channels_.regular_bw(i) +
                               shares_[static_cast<std::size_t>(i)]);
      if (trace_shunts) {
        tracer_.Emit(TraceEventType::kOverflowShunt, now, i,
                     channels_.regular_queue_size(i));
      }
      channels_.MoveRegularToOverflow(i);
      channels_.SetOverflow(
          i, Bandwidth::CeilDiv(channels_.overflow_queue_size(i),
                                params_.offline_delay));
    }
  }
  tracer_.Emit(TraceEventType::kPhaseBoundary, now, -1, overloaded);
  if (channels_.TotalRegular() > two_b_o_) {
    for (const std::int64_t i : hot_.items()) {
      if (!Active(i)) continue;
      if (trace_shunts && channels_.regular_queue_size(i) > 0) {
        tracer_.Emit(TraceEventType::kOverflowShunt, now, i,
                     channels_.regular_queue_size(i));
      }
      channels_.MoveRegularToOverflow(i);
      channels_.SetOverflow(
          i, Bandwidth::CeilDiv(channels_.overflow_queue_size(i),
                                params_.offline_delay));
    }
    tracer_.Emit(TraceEventType::kStageCertified, now, -1, completed_stages_);
    ++completed_stages_;
    ResetEvent(now);
  }
  hot_.FilterInPlace([&](std::int64_t i) { return !Quiescent(i); });
}

void PhasedMulti::StepSparse(Time now,
                             std::span<const SessionArrival> arrivals) {
  BW_CHECK(mode_ != StepMode::kDense,
           "PhasedMulti: sparse Step after dense stepping");
  mode_ = StepMode::kSparse;
  if (!started_) {
    started_ = true;
    Reset(now);  // first RESET touches all k, like the naive path
  } else if (now == next_phase_ + perturb_wakeups_) {
    PhaseBoundaryEvent(now);
    if (now == next_phase_ + perturb_wakeups_) {
      next_phase_ = now + params_.offline_delay;
    }
  }
  for (const SessionArrival& a : arrivals) {
    channels_.Enqueue(a.session, now, a.bits);
    if (a.bits > 0) hot_.Add(a.session);
  }
  channels_.ServeActiveSlot(now);
}

}  // namespace bwalloc
