// Admission control for dynamic session arrivals.
//
// Every arriving session (sim/churn.h SessionSpec) is accepted or rejected
// before the allocator ever sees it. Three policies, all exact-integer so
// decisions are identical across engines and platforms:
//
//   kGreedy     — admit iff the sum of concurrently-committed rates stays
//                 within the offline feasibility rate B_O. The baseline
//                 feasibility-first policy: never over-commits, but blind
//                 to when a booked session actually starts.
//   kThreshold  — greedy with headroom: admit iff the committed sum stays
//                 within threshold·B_O (threshold in basis points), keeping
//                 a reserve for the overflow channel's transient bursts.
//   kLedger     — book-ahead aware: a per-slot reservation ledger over the
//                 horizon; admit iff every slot of [start, depart) has
//                 room. Time-disjoint reservations share capacity, so a
//                 "B bits starting at t+d" request can be accepted even
//                 while the present is full.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/churn.h"
#include "util/types.h"

namespace bwalloc {

enum class AdmissionPolicyKind : std::uint8_t {
  kGreedy = 0,
  kThreshold = 1,
  kLedger = 2,
};

const char* ToString(AdmissionPolicyKind kind);

struct AdmissionConfig {
  AdmissionPolicyKind policy = AdmissionPolicyKind::kGreedy;
  Bits capacity = 0;  // B_O, the offline feasibility rate
  // Utilization threshold in basis points of `capacity` (kThreshold only);
  // 8500 = admit while committed rates stay within 85% of B_O.
  std::int64_t threshold_bp = 8500;
  Time horizon = 0;  // reservation ledger length (kLedger only)

  // Programmatic misuse (BW_REQUIRE): capacity <= 0, threshold outside
  // [0, 10000], or a ledger with no horizon. CLI flag validation happens
  // before this, with exit-2 messages naming the flag.
  void Validate() const;
};

class AdmissionController final : public AdmissionPolicy {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  AdmissionVerdict Decide(const SessionSpec& spec, Time now) override;
  void Release(const SessionSpec& spec, Time now) override;

  // Sum of currently-committed rates (greedy/threshold bookkeeping).
  Bits committed() const { return committed_; }

  void SaveState(StateWriter& w) const override;
  void LoadState(StateReader& r) override;

 private:
  AdmissionConfig config_;
  Bits committed_ = 0;
  std::vector<Bits> ledger_;  // per-slot committed rate (kLedger only)
};

}  // namespace bwalloc
