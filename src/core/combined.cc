#include "core/combined.h"

#include "util/power_of_two.h"

namespace bwalloc {

CombinedOnline::CombinedOnline(const CombinedParams& params,
                               ServiceDiscipline discipline)
    : params_(params),
      channels_(params.sessions, discipline),
      low_tracker_(params.offline_delay),
      // While no full W-window fits in the global stage, high(t) is
      // unbounded; 2 B_O caps B_on's range (low <= B_O within a stage on
      // feasible input, so B_on <= 2 B_O).
      high_tracker_(params.window, params.offline_utilization,
                    2 * params.offline_bandwidth),
      reduce_wheel_(params.offline_delay + 2),
      hot_(params.sessions),
      active_(static_cast<std::size_t>(params.sessions), 1) {
  params_.Validate();
}

bool CombinedOnline::RegularOverloaded(std::int64_t i) const {
  const Int128 lhs = static_cast<Int128>(channels_.regular_queue_size(i))
                       << Bandwidth::kShift;
  const Int128 rhs = static_cast<Int128>(channels_.regular_bw(i).raw()) *
                       params_.offline_delay;
  return lhs > rhs;
}

void CombinedOnline::StartGlobalStage(Time ts) {
  low_tracker_.StartStage(ts);
  high_tracker_.StartStage(ts);
  b_on_ = 0;  // nothing has arrived this stage: reserve nothing
}

void CombinedOnline::StartLocalStage(Time now, bool shunt_regular) {
  tracer_.Emit(TraceEventType::kStageStart, now, -1, completed_local_stages_);
  // Overflow allocations are recomputed wholesale below; pending
  // continuous-inner leases would double-subtract.
  reductions_.clear();
  share_ = Bandwidth::FromBitsPerSlot(b_on_) / params_.sessions;
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    if (!Active(i)) continue;
    if (shunt_regular && channels_.regular_queue_size(i) > 0) {
      channels_.MoveRegularToOverflow(i);
    }
    if (channels_.overflow_queue_size(i) > 0) {
      channels_.SetOverflow(
          i, Bandwidth::CeilDiv(channels_.overflow_queue_size(i),
                                params_.offline_delay));
    } else {
      channels_.SetOverflow(i, Bandwidth::Zero());
    }
    channels_.SetRegular(i, share_);
  }
  next_phase_ = now + params_.offline_delay;
}

void CombinedOnline::PhaseBoundary(Time now) {
  const bool trace_shunts = tracer_.enabled(TraceEventType::kOverflowShunt);
  std::int64_t overloaded = 0;
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    if (!Active(i)) continue;
    if (!RegularOverloaded(i)) {
      channels_.SetOverflow(i, Bandwidth::Zero());
    } else {
      ++overloaded;
      channels_.SetRegular(i, channels_.regular_bw(i) + share_);
      if (trace_shunts) {
        tracer_.Emit(TraceEventType::kOverflowShunt, now, i,
                     channels_.regular_queue_size(i));
      }
      channels_.MoveRegularToOverflow(i);
      channels_.SetOverflow(
          i, Bandwidth::CeilDiv(channels_.overflow_queue_size(i),
                                params_.offline_delay));
    }
  }
  tracer_.Emit(TraceEventType::kPhaseBoundary, now, -1, overloaded);
  const Bandwidth cap = Bandwidth::FromBitsPerSlot(2 * b_on_);
  if (channels_.TotalRegular() > cap) {
    tracer_.Emit(TraceEventType::kStageCertified, now, -1,
                 completed_local_stages_);
    ++completed_local_stages_;
    StartLocalStage(now, /*shunt_regular=*/true);
  }
}

void CombinedOnline::ShuntWithLease(Time now, std::int64_t i) {
  const Bits q = channels_.regular_queue_size(i);
  if (q == 0) return;
  tracer_.Emit(TraceEventType::kOverflowShunt, now, i, q);
  channels_.MoveRegularToOverflow(i);
  const Bandwidth lease = Bandwidth::CeilDiv(q, params_.offline_delay);
  channels_.AddOverflow(i, lease);
  reductions_[now + params_.offline_delay].push_back({i, lease});
}

void CombinedOnline::ContinuousTest(Time now, std::int64_t i) {
  if (!RegularOverloaded(i)) return;
  channels_.SetRegular(i, channels_.regular_bw(i) + share_);
  ShuntWithLease(now, i);
  const Bandwidth cap = Bandwidth::FromBitsPerSlot(2 * b_on_);
  if (channels_.TotalRegular() > cap) {
    tracer_.Emit(TraceEventType::kStageCertified, now, -1,
                 completed_local_stages_);
    ++completed_local_stages_;
    StartLocalStage(now, /*shunt_regular=*/true);
  }
}

void CombinedOnline::ApplyReductions(Time now) {
  const auto it = reductions_.find(now);
  if (it == reductions_.end()) return;
  for (const Reduction& r : it->second) {
    channels_.AddOverflow(r.session, Bandwidth::Zero() - r.amount);
  }
  reductions_.erase(it);
}

void CombinedOnline::GlobalReset(Time now) {
  reductions_.clear();
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    if (!Active(i)) continue;
    channels_.DrainSessionInto(i, global_queue_);
    channels_.SetOverflow(i, Bandwidth::Zero());
  }
  if (global_queue_.size() > peak_global_queue_) {
    peak_global_queue_ = global_queue_.size();
  }
  tracer_.Emit(TraceEventType::kGlobalReset, now, -1, global_queue_.size());
  ++completed_global_stages_;
  ++completed_local_stages_;  // the local stage ends with the global one
  // A new global stage begins immediately (next slot in slotted time).
  StartGlobalStage(now + 1);
  StartLocalStage(now, /*shunt_regular=*/false);
}

void CombinedOnline::Step(Time now, std::span<const Bits> arrivals) {
  BW_REQUIRE(static_cast<std::int64_t>(arrivals.size()) == params_.sessions,
             "CombinedOnline::Step: arrival vector size mismatch");
  BW_CHECK(mode_ != StepMode::kSparse,
           "CombinedOnline: dense Step after sparse stepping");
  mode_ = StepMode::kDense;
  if (!started_) {
    started_ = true;
    StartGlobalStage(now);
    StartLocalStage(now, /*shunt_regular=*/false);
  }

  Bits total_in = 0;
  for (const Bits a : arrivals) total_in += a;

  // Global envelopes over the aggregate stream (same conventions as the
  // single-session algorithm: low excludes slot-t arrivals, high includes).
  bool global_reset = false;
  {
    const Ratio low = low_tracker_.LowAt(now);
    high_tracker_.RecordArrivals(now, total_in);
    const Ratio high = high_tracker_.HighAt();
    low_tracker_.RecordArrivals(total_in);

    if (high < low || Ratio(params_.offline_bandwidth, 1) < low) {
      GlobalReset(now);
      global_reset = true;
    } else if (!low.is_zero()) {
      const Bits level = CeilPowerOfTwoAtLeast(low);
      if (level > b_on_) {
        tracer_.Emit(TraceEventType::kLevelChange, now, -1, b_on_, level);
        b_on_ = level;
        ++completed_local_stages_;
        StartLocalStage(now, /*shunt_regular=*/true);
      }
    }
  }

  // Inner multi-session machinery.
  if (params_.continuous_inner) {
    if (!global_reset) ApplyReductions(now);
    for (std::int64_t i = 0; i < params_.sessions; ++i) {
      channels_.Enqueue(i, now, arrivals[static_cast<std::size_t>(i)]);
      if (!global_reset && arrivals[static_cast<std::size_t>(i)] > 0) {
        ContinuousTest(now, i);
      }
    }
  } else {
    if (!global_reset && now == next_phase_) {
      PhaseBoundary(now);
      if (now == next_phase_) next_phase_ = now + params_.offline_delay;
    }
    for (std::int64_t i = 0; i < params_.sessions; ++i) {
      channels_.Enqueue(i, now, arrivals[static_cast<std::size_t>(i)]);
    }
  }
  channels_.ServeSlot(now);

  // Global overflow channel: 2 B_O while draining a GLOBAL RESET's queue.
  global_bw_ = global_queue_.empty()
                   ? Bandwidth::Zero()
                   : Bandwidth::FromBitsPerSlot(2 * params_.offline_bandwidth);
  global_delivered_ += global_queue_.ServeSlot(now, global_bw_, &global_delay_);
}

void CombinedOnline::OnSessionJoin(Time /*now*/, std::int64_t session) {
  active_[static_cast<std::size_t>(session)] = 1;
  // Mid-run join: hand the session the current share directly, as the
  // local-stage start would have. Pre-run joins wait for the first stage.
  if (started_) {
    channels_.SetRegular(session, share_);
  }
}

Bits CombinedOnline::OnSessionDepart(Time /*now*/, std::int64_t session) {
  active_[static_cast<std::size_t>(session)] = 0;
  channels_.SetRegular(session, Bandwidth::Zero());
  channels_.SetOverflow(session, Bandwidth::Zero());
  // Outstanding continuous-inner REDUCE leases must never fire for a
  // departed session — the overflow allocation they would return was just
  // zeroed. Both lease stores are swept; only the one matching the step
  // mode is non-empty.
  for (auto it = reductions_.begin(); it != reductions_.end();) {
    std::erase_if(it->second, [session](const Reduction& red) {
      return red.session == session;
    });
    it = it->second.empty() ? reductions_.erase(it) : std::next(it);
  }
  reduce_wheel_.CancelWhere(
      [session](const Reduction& red) { return red.session == session; });
  return channels_.DropSession(session);
}

// --- event-driven path -------------------------------------------------------
//
// A session outside the hot set has empty queues, zero overflow allocation,
// and regular allocation equal to the *current* share_. All local-stage and
// GLOBAL RESET actions are value-preserving no-ops on such sessions — with
// one exception: when share_ itself changes (a B_on level change, a GLOBAL
// RESET zeroing B_on, or the very first stage), the naive path rewrites
// every session's regular allocation to a genuinely new value. The sparse
// StartLocalStage therefore falls back to the full-k loop exactly when the
// incoming share differs, preserving the invariant for everyone else.

bool CombinedOnline::Quiescent(std::int64_t i) const {
  if (!Active(i)) return true;
  return channels_.regular_queue_size(i) == 0 &&
         channels_.overflow_queue_size(i) == 0 &&
         channels_.overflow_bw(i).raw() == 0 &&
         channels_.regular_bw(i).raw() == share_.raw();
}

void CombinedOnline::StartLocalStageEvent(Time now, bool shunt_regular) {
  tracer_.Emit(TraceEventType::kStageStart, now, -1, completed_local_stages_);
  reduce_wheel_.Clear();  // same role as the dense path's reductions_.clear()
  const Bandwidth new_share =
      Bandwidth::FromBitsPerSlot(b_on_) / params_.sessions;
  const bool share_changed = new_share.raw() != share_.raw();
  share_ = new_share;
  if (share_changed) {
    for (std::int64_t i = 0; i < params_.sessions; ++i) {
      if (!Active(i)) continue;
      if (shunt_regular && channels_.regular_queue_size(i) > 0) {
        channels_.MoveRegularToOverflow(i);
      }
      if (channels_.overflow_queue_size(i) > 0) {
        channels_.SetOverflow(
            i, Bandwidth::CeilDiv(channels_.overflow_queue_size(i),
                                  params_.offline_delay));
      } else {
        channels_.SetOverflow(i, Bandwidth::Zero());
      }
      channels_.SetRegular(i, share_);
    }
  } else {
    hot_.SortAscending();
    for (const std::int64_t i : hot_.items()) {
      if (!Active(i)) continue;
      if (shunt_regular && channels_.regular_queue_size(i) > 0) {
        channels_.MoveRegularToOverflow(i);
      }
      if (channels_.overflow_queue_size(i) > 0) {
        channels_.SetOverflow(
            i, Bandwidth::CeilDiv(channels_.overflow_queue_size(i),
                                  params_.offline_delay));
      } else {
        channels_.SetOverflow(i, Bandwidth::Zero());
      }
      channels_.SetRegular(i, share_);
    }
  }
  hot_.FilterInPlace([&](std::int64_t i) { return !Quiescent(i); });
  next_phase_ = now + params_.offline_delay;
}

void CombinedOnline::PhaseBoundaryEvent(Time now) {
  const bool trace_shunts = tracer_.enabled(TraceEventType::kOverflowShunt);
  hot_.SortAscending();
  std::int64_t overloaded = 0;
  for (const std::int64_t i : hot_.items()) {
    if (!Active(i)) continue;
    if (!RegularOverloaded(i)) {
      channels_.SetOverflow(i, Bandwidth::Zero());
    } else {
      ++overloaded;
      channels_.SetRegular(i, channels_.regular_bw(i) + share_);
      if (trace_shunts) {
        tracer_.Emit(TraceEventType::kOverflowShunt, now, i,
                     channels_.regular_queue_size(i));
      }
      channels_.MoveRegularToOverflow(i);
      channels_.SetOverflow(
          i, Bandwidth::CeilDiv(channels_.overflow_queue_size(i),
                                params_.offline_delay));
    }
  }
  tracer_.Emit(TraceEventType::kPhaseBoundary, now, -1, overloaded);
  const Bandwidth cap = Bandwidth::FromBitsPerSlot(2 * b_on_);
  if (channels_.TotalRegular() > cap) {
    tracer_.Emit(TraceEventType::kStageCertified, now, -1,
                 completed_local_stages_);
    ++completed_local_stages_;
    StartLocalStageEvent(now, /*shunt_regular=*/true);
  } else {
    hot_.FilterInPlace([&](std::int64_t i) { return !Quiescent(i); });
  }
}

void CombinedOnline::ShuntWithLeaseEvent(Time now, std::int64_t i) {
  const Bits q = channels_.regular_queue_size(i);
  if (q == 0) return;
  tracer_.Emit(TraceEventType::kOverflowShunt, now, i, q);
  channels_.MoveRegularToOverflow(i);
  const Bandwidth lease = Bandwidth::CeilDiv(q, params_.offline_delay);
  channels_.AddOverflow(i, lease);
  reduce_wheel_.ScheduleAt(now + params_.offline_delay + perturb_wakeups_,
                           {i, lease});
}

void CombinedOnline::ContinuousTestEvent(Time now, std::int64_t i) {
  if (!RegularOverloaded(i)) return;
  channels_.SetRegular(i, channels_.regular_bw(i) + share_);
  ShuntWithLeaseEvent(now, i);
  const Bandwidth cap = Bandwidth::FromBitsPerSlot(2 * b_on_);
  if (channels_.TotalRegular() > cap) {
    tracer_.Emit(TraceEventType::kStageCertified, now, -1,
                 completed_local_stages_);
    ++completed_local_stages_;
    StartLocalStageEvent(now, /*shunt_regular=*/true);
  }
}

void CombinedOnline::GlobalResetEvent(Time now) {
  reduce_wheel_.Clear();
  hot_.SortAscending();
  for (const std::int64_t i : hot_.items()) {
    if (!Active(i)) continue;
    channels_.DrainSessionInto(i, global_queue_);
    channels_.SetOverflow(i, Bandwidth::Zero());
  }
  if (global_queue_.size() > peak_global_queue_) {
    peak_global_queue_ = global_queue_.size();
  }
  tracer_.Emit(TraceEventType::kGlobalReset, now, -1, global_queue_.size());
  ++completed_global_stages_;
  ++completed_local_stages_;  // the local stage ends with the global one
  StartGlobalStage(now + 1);
  StartLocalStageEvent(now, /*shunt_regular=*/false);
}

void CombinedOnline::StepSparse(Time now,
                                std::span<const SessionArrival> arrivals) {
  BW_CHECK(mode_ != StepMode::kDense,
           "CombinedOnline: sparse Step after dense stepping");
  mode_ = StepMode::kSparse;
  if (!started_) {
    started_ = true;
    StartGlobalStage(now);
    StartLocalStageEvent(now, /*shunt_regular=*/false);
  }

  Bits total_in = 0;
  for (const SessionArrival& a : arrivals) total_in += a.bits;

  bool global_reset = false;
  {
    const Ratio low = low_tracker_.LowAt(now);
    high_tracker_.RecordArrivals(now, total_in);
    const Ratio high = high_tracker_.HighAt();
    low_tracker_.RecordArrivals(total_in);

    if (high < low || Ratio(params_.offline_bandwidth, 1) < low) {
      GlobalResetEvent(now);
      global_reset = true;
    } else if (!low.is_zero()) {
      const Bits level = CeilPowerOfTwoAtLeast(low);
      if (level > b_on_) {
        tracer_.Emit(TraceEventType::kLevelChange, now, -1, b_on_, level);
        b_on_ = level;
        ++completed_local_stages_;
        StartLocalStageEvent(now, /*shunt_regular=*/true);
      }
    }
  }

  if (params_.continuous_inner) {
    if (!global_reset) {
      reduce_wheel_.PopDue(now, [&](const Reduction& r) {
        channels_.AddOverflow(r.session, Bandwidth::Zero() - r.amount);
      });
    }
    for (const SessionArrival& a : arrivals) {
      channels_.Enqueue(a.session, now, a.bits);
      if (a.bits > 0) {
        hot_.Add(a.session);
        if (!global_reset) ContinuousTestEvent(now, a.session);
      }
    }
  } else {
    if (!global_reset && now == next_phase_ + perturb_wakeups_) {
      PhaseBoundaryEvent(now);
      if (now == next_phase_ + perturb_wakeups_) {
        next_phase_ = now + params_.offline_delay;
      }
    }
    for (const SessionArrival& a : arrivals) {
      channels_.Enqueue(a.session, now, a.bits);
      if (a.bits > 0) hot_.Add(a.session);
    }
  }
  channels_.ServeActiveSlot(now);

  global_bw_ = global_queue_.empty()
                   ? Bandwidth::Zero()
                   : Bandwidth::FromBitsPerSlot(2 * params_.offline_bandwidth);
  global_delivered_ += global_queue_.ServeSlot(now, global_bw_, &global_delay_);
}

}  // namespace bwalloc
