#include "core/combined.h"

#include "util/power_of_two.h"

namespace bwalloc {

CombinedOnline::CombinedOnline(const CombinedParams& params,
                               ServiceDiscipline discipline)
    : params_(params),
      channels_(params.sessions, discipline),
      low_tracker_(params.offline_delay),
      // While no full W-window fits in the global stage, high(t) is
      // unbounded; 2 B_O caps B_on's range (low <= B_O within a stage on
      // feasible input, so B_on <= 2 B_O).
      high_tracker_(params.window, params.offline_utilization,
                    2 * params.offline_bandwidth) {
  params_.Validate();
}

bool CombinedOnline::RegularOverloaded(std::int64_t i) const {
  const Int128 lhs = static_cast<Int128>(channels_.regular_queue_size(i))
                       << Bandwidth::kShift;
  const Int128 rhs = static_cast<Int128>(channels_.regular_bw(i).raw()) *
                       params_.offline_delay;
  return lhs > rhs;
}

void CombinedOnline::StartGlobalStage(Time ts) {
  low_tracker_.StartStage(ts);
  high_tracker_.StartStage(ts);
  b_on_ = 0;  // nothing has arrived this stage: reserve nothing
}

void CombinedOnline::StartLocalStage(Time now, bool shunt_regular) {
  tracer_.Emit(TraceEventType::kStageStart, now, -1, completed_local_stages_);
  // Overflow allocations are recomputed wholesale below; pending
  // continuous-inner leases would double-subtract.
  reductions_.clear();
  share_ = Bandwidth::FromBitsPerSlot(b_on_) / params_.sessions;
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    if (shunt_regular && channels_.regular_queue_size(i) > 0) {
      channels_.MoveRegularToOverflow(i);
    }
    if (channels_.overflow_queue_size(i) > 0) {
      channels_.SetOverflow(
          i, Bandwidth::CeilDiv(channels_.overflow_queue_size(i),
                                params_.offline_delay));
    } else {
      channels_.SetOverflow(i, Bandwidth::Zero());
    }
    channels_.SetRegular(i, share_);
  }
  next_phase_ = now + params_.offline_delay;
}

void CombinedOnline::PhaseBoundary(Time now) {
  const bool trace_shunts = tracer_.enabled(TraceEventType::kOverflowShunt);
  std::int64_t overloaded = 0;
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    if (!RegularOverloaded(i)) {
      channels_.SetOverflow(i, Bandwidth::Zero());
    } else {
      ++overloaded;
      channels_.SetRegular(i, channels_.regular_bw(i) + share_);
      if (trace_shunts) {
        tracer_.Emit(TraceEventType::kOverflowShunt, now, i,
                     channels_.regular_queue_size(i));
      }
      channels_.MoveRegularToOverflow(i);
      channels_.SetOverflow(
          i, Bandwidth::CeilDiv(channels_.overflow_queue_size(i),
                                params_.offline_delay));
    }
  }
  tracer_.Emit(TraceEventType::kPhaseBoundary, now, -1, overloaded);
  const Bandwidth cap = Bandwidth::FromBitsPerSlot(2 * b_on_);
  if (channels_.TotalRegular() > cap) {
    tracer_.Emit(TraceEventType::kStageCertified, now, -1,
                 completed_local_stages_);
    ++completed_local_stages_;
    StartLocalStage(now, /*shunt_regular=*/true);
  }
}

void CombinedOnline::ShuntWithLease(Time now, std::int64_t i) {
  const Bits q = channels_.regular_queue_size(i);
  if (q == 0) return;
  tracer_.Emit(TraceEventType::kOverflowShunt, now, i, q);
  channels_.MoveRegularToOverflow(i);
  const Bandwidth lease = Bandwidth::CeilDiv(q, params_.offline_delay);
  channels_.AddOverflow(i, lease);
  reductions_[now + params_.offline_delay].push_back({i, lease});
}

void CombinedOnline::ContinuousTest(Time now, std::int64_t i) {
  if (!RegularOverloaded(i)) return;
  channels_.SetRegular(i, channels_.regular_bw(i) + share_);
  ShuntWithLease(now, i);
  const Bandwidth cap = Bandwidth::FromBitsPerSlot(2 * b_on_);
  if (channels_.TotalRegular() > cap) {
    tracer_.Emit(TraceEventType::kStageCertified, now, -1,
                 completed_local_stages_);
    ++completed_local_stages_;
    StartLocalStage(now, /*shunt_regular=*/true);
  }
}

void CombinedOnline::ApplyReductions(Time now) {
  const auto it = reductions_.find(now);
  if (it == reductions_.end()) return;
  for (const Reduction& r : it->second) {
    channels_.AddOverflow(r.session, Bandwidth::Zero() - r.amount);
  }
  reductions_.erase(it);
}

void CombinedOnline::GlobalReset(Time now) {
  reductions_.clear();
  for (std::int64_t i = 0; i < params_.sessions; ++i) {
    channels_.DrainSessionInto(i, global_queue_);
    channels_.SetOverflow(i, Bandwidth::Zero());
  }
  if (global_queue_.size() > peak_global_queue_) {
    peak_global_queue_ = global_queue_.size();
  }
  tracer_.Emit(TraceEventType::kGlobalReset, now, -1, global_queue_.size());
  ++completed_global_stages_;
  ++completed_local_stages_;  // the local stage ends with the global one
  // A new global stage begins immediately (next slot in slotted time).
  StartGlobalStage(now + 1);
  StartLocalStage(now, /*shunt_regular=*/false);
}

void CombinedOnline::Step(Time now, std::span<const Bits> arrivals) {
  BW_REQUIRE(static_cast<std::int64_t>(arrivals.size()) == params_.sessions,
             "CombinedOnline::Step: arrival vector size mismatch");
  if (!started_) {
    started_ = true;
    StartGlobalStage(now);
    StartLocalStage(now, /*shunt_regular=*/false);
  }

  Bits total_in = 0;
  for (const Bits a : arrivals) total_in += a;

  // Global envelopes over the aggregate stream (same conventions as the
  // single-session algorithm: low excludes slot-t arrivals, high includes).
  bool global_reset = false;
  {
    const Ratio low = low_tracker_.LowAt(now);
    high_tracker_.RecordArrivals(now, total_in);
    const Ratio high = high_tracker_.HighAt();
    low_tracker_.RecordArrivals(total_in);

    if (high < low || Ratio(params_.offline_bandwidth, 1) < low) {
      GlobalReset(now);
      global_reset = true;
    } else if (!low.is_zero()) {
      const Bits level = CeilPowerOfTwoAtLeast(low);
      if (level > b_on_) {
        tracer_.Emit(TraceEventType::kLevelChange, now, -1, b_on_, level);
        b_on_ = level;
        ++completed_local_stages_;
        StartLocalStage(now, /*shunt_regular=*/true);
      }
    }
  }

  // Inner multi-session machinery.
  if (params_.continuous_inner) {
    if (!global_reset) ApplyReductions(now);
    for (std::int64_t i = 0; i < params_.sessions; ++i) {
      channels_.Enqueue(i, now, arrivals[static_cast<std::size_t>(i)]);
      if (!global_reset && arrivals[static_cast<std::size_t>(i)] > 0) {
        ContinuousTest(now, i);
      }
    }
  } else {
    if (!global_reset && now == next_phase_) {
      PhaseBoundary(now);
      if (now == next_phase_) next_phase_ = now + params_.offline_delay;
    }
    for (std::int64_t i = 0; i < params_.sessions; ++i) {
      channels_.Enqueue(i, now, arrivals[static_cast<std::size_t>(i)]);
    }
  }
  channels_.ServeSlot(now);

  // Global overflow channel: 2 B_O while draining a GLOBAL RESET's queue.
  global_bw_ = global_queue_.empty()
                   ? Bandwidth::Zero()
                   : Bandwidth::FromBitsPerSlot(2 * params_.offline_bandwidth);
  global_delivered_ += global_queue_.ServeSlot(now, global_bw_, &global_delay_);
}

}  // namespace bwalloc
