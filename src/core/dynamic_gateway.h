// Dynamic-membership gateway (extension).
//
// The paper's multi-session model fixes k up front; a real provider's
// sessions come and go. This gateway runs the phased algorithm's machinery
// over a mutable session set: joins and leaves trigger a RESET with the
// share re-divided as B_O / k_current (a membership change is itself an
// offline re-allocation event, so charging a stage to it keeps the
// Theorem 14 accounting honest). A departing session's backlog keeps its
// overflow allocation until drained, so the delay guarantee covers bits
// admitted before the leave.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/bit_queue.h"
#include "sim/metrics.h"
#include "util/assert.h"
#include "util/fixed_point.h"
#include "util/histogram.h"
#include "util/types.h"

namespace bwalloc {

class DynamicGateway {
 public:
  DynamicGateway(Bits offline_bandwidth, Time offline_delay);

  // Admit a new session; returns its id. Takes effect at the next Step.
  std::int64_t Join();

  // Remove a session. Bits already queued are still delivered.
  void Leave(std::int64_t session);

  // Feed arrivals for the CURRENT slot (before Step(now)).
  void Arrive(Time now, std::int64_t session, Bits bits);

  // Run one slot: membership changes, phase logic, service.
  void Step(Time now);

  // --- introspection ---------------------------------------------------------
  std::int64_t active_sessions() const;
  std::int64_t stages() const { return completed_stages_; }
  std::int64_t membership_resets() const { return membership_resets_; }
  std::int64_t allocation_changes() const { return change_counter_; }
  Bits queued_bits() const;
  const DelayHistogram& delay() const { return delay_; }
  Bandwidth TotalRegular() const;
  Bandwidth TotalOverflow() const;

 private:
  struct Session {
    BitQueue regular;
    BitQueue overflow;
    Bandwidth regular_bw;
    Bandwidth overflow_bw;
    bool active = false;
    bool departing = false;  // no longer admits traffic, still draining
  };

  void SetRegular(Session& s, Bandwidth bw);
  void SetOverflow(Session& s, Bandwidth bw);
  bool RegularOverloaded(const Session& s) const;
  void Reset(Time now);
  void PhaseBoundary(Time now);

  Bits offline_bandwidth_;
  Time offline_delay_;
  Bandwidth two_b_o_;
  std::vector<Session> sessions_;
  Time next_phase_ = kNoTime;
  bool membership_dirty_ = false;
  bool started_ = false;

  std::int64_t completed_stages_ = 0;
  std::int64_t membership_resets_ = 0;
  std::int64_t change_counter_ = 0;
  DelayHistogram delay_;
};

}  // namespace bwalloc
