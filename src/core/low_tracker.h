// Incremental computation of the delay envelope low(t) (Section 2).
//
//   low(t) = max_{t_s <= t' <= t} max_{0 <= w <= t' - t_s} IN[t'-w, t') / (w + D_O)
//          = max( low(t-1), max_{0 <= w <= t - t_s} IN[t-w, t) / (w + D_O) ),
//
// the identity the paper gives below the algorithm. With P(.) the
// stage-local cumulative arrivals (P(t) = bits arrived in slots [t_s, t)),
// the inner max is the maximum slope from the query point (t + D_O, P(t))
// to the appended points {(s, P(s))}, answered in O(log n) by the convex
// hull in util/envelope.h.
//
// Under the assumption that the offline algorithm kept one bandwidth value
// since t_s, low(t) is a lower bound on that value (it must deliver every
// window's bits within D_O).
//
// Call protocol per slot t (strict): low = LowAt(t); then
// RecordArrivals(bits of slot t) — low(t) excludes slot-t arrivals by the
// paper's half-open window convention.
#pragma once

#include "state/serializer.h"
#include "util/assert.h"
#include "util/envelope.h"
#include "util/ratio.h"
#include "util/types.h"

namespace bwalloc {

class LowTracker {
 public:
  explicit LowTracker(Time offline_delay) : d_o_(offline_delay) {
    BW_REQUIRE(offline_delay >= 1, "LowTracker: D_O must be >= 1");
  }

  // Begin a new stage at slot ts. low(ts) = 0.
  void StartStage(Time ts) {
    hull_.Clear();
    cum_ = 0;
    low_ = Ratio(0, 1);
    next_slot_ = ts;
  }

  // low(t). Must be called exactly once per slot, in order, before
  // RecordArrivals for the same slot.
  Ratio LowAt(Time t) {
    BW_CHECK(t == next_slot_, "LowTracker: slots must be visited in order");
    hull_.Append(t, cum_);
    const Ratio inner = hull_.MaxSlopeTo(t + d_o_, cum_);
    if (low_ < inner) low_ = inner;
    return low_;
  }

  // Record the arrivals of slot t (the slot LowAt was just called for).
  void RecordArrivals(Bits bits) {
    BW_REQUIRE(bits >= 0, "LowTracker: negative arrivals");
    cum_ += bits;
    ++next_slot_;
  }

  Ratio current() const { return low_; }

  void SaveState(StateWriter& w) const {
    w.Tag("LOW1");
    hull_.SaveState(w);
    w.I64(cum_);
    w.I64(low_.num());
    w.I64(low_.den());
    w.I64(next_slot_);
  }

  void LoadState(StateReader& r) {
    r.Tag("LOW1");
    hull_.LoadState(r);
    cum_ = r.I64();
    const std::int64_t num = r.I64();
    const std::int64_t den = r.I64();
    low_ = Ratio(num, den);
    next_slot_ = r.I64();
  }

 private:
  Time d_o_;
  MaxSlopeEnvelope hull_;
  Bits cum_ = 0;       // stage-local P(t)
  Ratio low_{0, 1};
  Time next_slot_ = 0;
};

}  // namespace bwalloc
