// The phased multi-session algorithm (Section 3.1, Figure 4).
//
// k sessions share total bandwidth B_A = 4 B_O, split into a regular
// channel (capacity 2 B_O) and an overflow channel (capacity 2 B_O,
// Lemma 10). The algorithm works in stages, each preceded by a RESET that
// sets every session's regular allocation to B_O / k. Phases last D_O slots;
// at each phase boundary, sessions whose regular queue cannot drain within
// D_O get +B_O/k of regular bandwidth and their backlog is shunted to the
// overflow channel, sized to drain it within the next phase. When the total
// regular allocation exceeds 2 B_O, the stage ends — at that point any
// offline (B_O, D_O)-server must have changed some allocation (Lemma 13) —
// and a RESET starts the next stage.
//
// Guarantees (Theorem 14): delay <= 2 D_O; total bandwidth <= 4 B_O; at
// most 3k allocation changes per stage.
#pragma once

#include <cstdint>
#include <vector>

#include "core/params.h"
#include "obs/tracer.h"
#include "sim/engine_multi.h"
#include "sim/hot_set.h"
#include "sim/session_channels.h"
#include "state/serializer.h"
#include "util/fixed_point.h"
#include "util/types.h"

namespace bwalloc {

class PhasedMulti final : public MultiSessionSystem {
 public:
  explicit PhasedMulti(
      const MultiSessionParams& params,
      ServiceDiscipline discipline = ServiceDiscipline::kTwoChannel);

  void Step(Time now, std::span<const Bits> arrivals) override;
  // Event-driven path: only sessions in the hot set (arrivals since the
  // last quiescence check, or carrying boosted/overflow allocation) are
  // touched at phase boundaries; all others are provably no-ops for every
  // Fig. 4 action. Behaviorally identical to Step (differentially tested).
  bool SupportsSparseStep() const override { return true; }
  void StepSparse(Time now,
                  std::span<const SessionArrival> arrivals) override;
  void PerturbEventWakeupsForTest() override { perturb_wakeups_ = 1; }
  const SessionChannels& channels() const override { return channels_; }
  std::int64_t stages() const override { return completed_stages_; }
  Bandwidth DeclaredTotalBandwidth() const override {
    return Bandwidth::FromBitsPerSlot(4 * params_.offline_bandwidth);
  }
  void SetTracer(const Tracer& tracer) override { tracer_ = tracer; }

  // --- dynamic churn --------------------------------------------------------
  // Inactive sessions are invisible to every Fig. 4 action: RESET and the
  // phase boundary skip them, and Quiescent() reports them quiescent so
  // the hot set sheds them. A joining session starts at its share with
  // empty queues — exactly the quiescent fixed point — so dense and sparse
  // paths stay event-for-event identical under churn.
  bool SupportsChurn() const override { return true; }
  void OnSessionJoin(Time now, std::int64_t session) override;
  Bits OnSessionDepart(Time now, std::int64_t session) override;

  // --- checkpoint/restore ---------------------------------------------------
  bool SupportsCheckpoint() const override { return true; }

  void SaveState(StateWriter& w) const override {
    w.Tag("PHM1");
    channels_.SaveState(w);
    w.I64(next_phase_);
    w.I64(completed_stages_);
    w.Bool(started_);
    hot_.SaveState(w);
    w.U8(static_cast<std::uint8_t>(mode_));
    for (const char a : active_) w.Bool(a != 0);
  }

  void LoadState(StateReader& r) override {
    r.Tag("PHM1");
    channels_.LoadState(r);
    next_phase_ = r.I64();
    completed_stages_ = r.I64();
    started_ = r.Bool();
    hot_.LoadState(r);
    mode_ = static_cast<StepMode>(r.U8());
    for (char& a : active_) a = r.Bool() ? 1 : 0;
  }

 private:
  enum class StepMode { kNone, kDense, kSparse };

  void Reset(Time now);
  void PhaseBoundary(Time now);
  void ResetEvent(Time now);
  void PhaseBoundaryEvent(Time now);

  // True when session i can be skipped by every phase-boundary action:
  // empty queues, no overflow allocation, regular allocation at its share
  // — or the session is not active (departed / never admitted).
  bool Quiescent(std::int64_t i) const;

  bool Active(std::int64_t i) const {
    return active_[static_cast<std::size_t>(i)] != 0;
  }

  // Fig. 4's test |Q_r| > B_r * D_O, exact in fixed point.
  bool RegularOverloaded(std::int64_t i) const;

  MultiSessionParams params_;
  SessionChannels channels_;
  std::vector<Bandwidth> shares_;  // per-session quantum (B_O/k or weighted)
  Bandwidth two_b_o_;      // 2 B_O
  Time next_phase_ = 0;
  std::int64_t completed_stages_ = 0;
  bool started_ = false;
  Tracer tracer_;          // disabled unless SetTracer was called
  HotSet hot_;             // sparse path: candidate non-quiescent sessions
  std::vector<char> active_;   // churn mask; all 1 for fixed populations
  Time perturb_wakeups_ = 0;   // test hook: delays phase boundaries
  StepMode mode_ = StepMode::kNone;  // dense/sparse must never mix
};

}  // namespace bwalloc
