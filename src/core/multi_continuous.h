// The continuous multi-session algorithm (Section 3.2, Figure 5).
//
// Like the phased algorithm, but the overload test runs whenever bits are
// added to a regular queue instead of at phase boundaries, and overflow
// bandwidth is leased: TEST(i) adds q/D_O to session i's overflow channel
// and a REDUCE timer returns exactly that amount D_O slots later (by which
// time the shunted bits have drained). Total bandwidth B_A = 5 B_O: regular
// channel 2 B_O, overflow channel 3 B_O (Lemma 16).
//
// Guarantees (Theorem 17): delay <= 2 D_O; total bandwidth <= 5 B_O; at
// most 3k allocation changes per stage, each stage certifying >= 1 offline
// change.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/params.h"
#include "obs/tracer.h"
#include "sim/engine_multi.h"
#include "sim/hot_set.h"
#include "sim/session_channels.h"
#include "sim/timer_wheel.h"
#include "state/serializer.h"
#include "util/fixed_point.h"
#include "util/types.h"

namespace bwalloc {

class ContinuousMulti final : public MultiSessionSystem {
 public:
  explicit ContinuousMulti(
      const MultiSessionParams& params,
      ServiceDiscipline discipline = ServiceDiscipline::kTwoChannel);

  void Step(Time now, std::span<const Bits> arrivals) override;
  // Event-driven path: arrivals drive the Fig. 5 TESTs directly (already
  // per-session events), REDUCE timers live in a timer wheel, and stage
  // ends iterate only the hot set. Behaviorally identical to Step
  // (differentially tested).
  bool SupportsSparseStep() const override { return true; }
  void StepSparse(Time now,
                  std::span<const SessionArrival> arrivals) override;
  void PerturbEventWakeupsForTest() override { perturb_wakeups_ = 1; }
  const SessionChannels& channels() const override { return channels_; }
  std::int64_t stages() const override { return completed_stages_; }
  Bandwidth DeclaredTotalBandwidth() const override {
    return Bandwidth::FromBitsPerSlot(5 * params_.offline_bandwidth);
  }
  void SetTracer(const Tracer& tracer) override { tracer_ = tracer; }
  void SetTelemetry(telemetry::RuntimeShard* shard) override {
    reduce_wheel_.SetTelemetry(shard);
  }

  // --- dynamic churn --------------------------------------------------------
  // TEST fires only on arrivals, and the engine masks arrivals for inactive
  // sessions, so the only Fig. 5 actions that must skip a departed session
  // are the RESETs. Departure cancels the session's outstanding REDUCE
  // leases (their overflow allocation was just zeroed); Quiescent() reports
  // inactive sessions quiescent so the hot set sheds them.
  bool SupportsChurn() const override { return true; }
  void OnSessionJoin(Time now, std::int64_t session) override;
  Bits OnSessionDepart(Time now, std::int64_t session) override;

  // --- checkpoint/restore ---------------------------------------------------
  bool SupportsCheckpoint() const override { return true; }

  void SaveState(StateWriter& w) const override {
    w.Tag("CNM1");
    channels_.SaveState(w);
    w.I64(completed_stages_);
    w.Bool(started_);
    w.U64(reductions_.size());
    for (const auto& [due, list] : reductions_) {
      w.I64(due);
      w.U64(list.size());
      for (const Reduction& red : list) {
        w.I64(red.session);
        w.I64(red.amount.raw());
      }
    }
    reduce_wheel_.SaveState(w, [](StateWriter& sw, const Reduction& red) {
      sw.I64(red.session);
      sw.I64(red.amount.raw());
    });
    hot_.SaveState(w);
    w.U8(static_cast<std::uint8_t>(mode_));
    for (const char a : active_) w.Bool(a != 0);
  }

  void LoadState(StateReader& r) override {
    r.Tag("CNM1");
    channels_.LoadState(r);
    completed_stages_ = r.I64();
    started_ = r.Bool();
    reductions_.clear();
    const std::uint64_t n_slots = r.Count(std::uint64_t{1} << 32);
    for (std::uint64_t s = 0; s < n_slots; ++s) {
      const Time due = r.I64();
      auto& list = reductions_[due];
      list.resize(r.Count(std::uint64_t{1} << 32));
      for (Reduction& red : list) {
        red.session = r.I64();
        red.amount = Bandwidth::FromRaw(r.I64());
      }
    }
    reduce_wheel_.LoadState(r, [](StateReader& sr, Reduction& red) {
      red.session = sr.I64();
      red.amount = Bandwidth::FromRaw(sr.I64());
    });
    hot_.LoadState(r);
    mode_ = static_cast<StepMode>(r.U8());
    for (char& a : active_) a = r.Bool() ? 1 : 0;
  }

 private:
  enum class StepMode { kNone, kDense, kSparse };

  void Reset(Time now);
  void Test(Time now, std::int64_t i);
  void ShuntToOverflow(Time now, std::int64_t i);
  void ApplyReductions(Time now);
  void ResetEvent(Time now);
  void TestEvent(Time now, std::int64_t i);
  void ShuntToOverflowEvent(Time now, std::int64_t i);
  bool Quiescent(std::int64_t i) const;
  bool RegularOverloaded(std::int64_t i) const;

  bool Active(std::int64_t i) const {
    return active_[static_cast<std::size_t>(i)] != 0;
  }

  MultiSessionParams params_;
  SessionChannels channels_;
  std::vector<Bandwidth> shares_;  // per-session quantum (B_O/k or weighted)
  Bandwidth two_b_o_;  // 2 B_O
  std::int64_t completed_stages_ = 0;
  bool started_ = false;
  Tracer tracer_;      // disabled unless SetTracer was called

  struct Reduction {
    std::int64_t session;
    Bandwidth amount;
  };
  // Dense path keeps the original map-of-slots; the sparse path schedules
  // the same reductions on a timer wheel (one wakeup per lease).
  std::map<Time, std::vector<Reduction>> reductions_;
  TimerWheel<Reduction> reduce_wheel_;
  HotSet hot_;                 // sparse path: candidate non-quiescent sessions
  std::vector<char> active_;   // churn mask; all 1 for fixed populations
  Time perturb_wakeups_ = 0;   // test hook: delays REDUCE wakeups
  StepMode mode_ = StepMode::kNone;  // dense/sparse must never mix
};

}  // namespace bwalloc
