#include "core/dynamic_gateway.h"

namespace bwalloc {

DynamicGateway::DynamicGateway(Bits offline_bandwidth, Time offline_delay)
    : offline_bandwidth_(offline_bandwidth), offline_delay_(offline_delay) {
  BW_REQUIRE(offline_bandwidth >= 1, "DynamicGateway: B_O must be >= 1");
  BW_REQUIRE(offline_delay >= 1, "DynamicGateway: D_O must be >= 1");
  two_b_o_ = Bandwidth::FromBitsPerSlot(2 * offline_bandwidth);
}

std::int64_t DynamicGateway::Join() {
  // Reuse a fully-drained departed slot if one exists.
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    Session& s = sessions_[i];
    if (!s.active && !s.departing && s.regular.empty() &&
        s.overflow.empty()) {
      s = Session{};
      s.active = true;
      membership_dirty_ = true;
      return static_cast<std::int64_t>(i);
    }
  }
  sessions_.emplace_back();
  sessions_.back().active = true;
  membership_dirty_ = true;
  return static_cast<std::int64_t>(sessions_.size()) - 1;
}

void DynamicGateway::Leave(std::int64_t session) {
  auto& s = sessions_.at(static_cast<std::size_t>(session));
  BW_REQUIRE(s.active, "Leave: session is not active");
  s.active = false;
  s.departing = !s.regular.empty() || !s.overflow.empty();
  membership_dirty_ = true;
}

void DynamicGateway::Arrive(Time now, std::int64_t session, Bits bits) {
  auto& s = sessions_.at(static_cast<std::size_t>(session));
  BW_REQUIRE(s.active, "Arrive: session is not active");
  s.regular.Enqueue(now, bits);
}

std::int64_t DynamicGateway::active_sessions() const {
  std::int64_t n = 0;
  for (const Session& s : sessions_) n += s.active ? 1 : 0;
  return n;
}

Bits DynamicGateway::queued_bits() const {
  Bits q = 0;
  for (const Session& s : sessions_) {
    q += s.regular.size() + s.overflow.size();
  }
  return q;
}

Bandwidth DynamicGateway::TotalRegular() const {
  Bandwidth sum;
  for (const Session& s : sessions_) sum += s.regular_bw;
  return sum;
}

Bandwidth DynamicGateway::TotalOverflow() const {
  Bandwidth sum;
  for (const Session& s : sessions_) sum += s.overflow_bw;
  return sum;
}

void DynamicGateway::SetRegular(Session& s, Bandwidth bw) {
  if (s.regular_bw != bw) ++change_counter_;
  s.regular_bw = bw;
}

void DynamicGateway::SetOverflow(Session& s, Bandwidth bw) {
  if (s.overflow_bw != bw) ++change_counter_;
  s.overflow_bw = bw;
}

bool DynamicGateway::RegularOverloaded(const Session& s) const {
  const Int128 lhs = static_cast<Int128>(s.regular.size())
                     << Bandwidth::kShift;
  const Int128 rhs =
      static_cast<Int128>(s.regular_bw.raw()) * offline_delay_;
  return lhs > rhs;
}

void DynamicGateway::Reset(Time now) {
  const std::int64_t k = active_sessions();
  const Bandwidth share =
      k > 0 ? Bandwidth::FromBitsPerSlot(offline_bandwidth_) / k
            : Bandwidth::Zero();
  for (Session& s : sessions_) {
    if (s.active) {
      SetRegular(s, share);
    } else {
      SetRegular(s, Bandwidth::Zero());
      // A departing session's backlog drains through its overflow channel.
      if (s.departing) {
        s.regular.DrainInto(s.overflow);
        SetOverflow(s, Bandwidth::CeilDiv(s.overflow.size(),
                                          offline_delay_));
      }
    }
  }
  next_phase_ = now + offline_delay_;
}

void DynamicGateway::PhaseBoundary(Time now) {
  for (Session& s : sessions_) {
    if (!s.active) continue;
    if (!RegularOverloaded(s)) {
      BW_CHECK(s.overflow.empty(),
               "overflow queue not drained at phase boundary");
      SetOverflow(s, Bandwidth::Zero());
    } else {
      const std::int64_t k = active_sessions();
      SetRegular(s, s.regular_bw +
                        Bandwidth::FromBitsPerSlot(offline_bandwidth_) / k);
      s.regular.DrainInto(s.overflow);
      SetOverflow(s, Bandwidth::CeilDiv(s.overflow.size(), offline_delay_));
    }
  }
  if (TotalRegular() > two_b_o_) {
    for (Session& s : sessions_) {
      if (!s.active) continue;
      s.regular.DrainInto(s.overflow);
      SetOverflow(s, Bandwidth::CeilDiv(s.overflow.size(), offline_delay_));
    }
    ++completed_stages_;
    Reset(now);
  }
}

void DynamicGateway::Step(Time now) {
  if (!started_ || membership_dirty_) {
    if (started_) ++membership_resets_;
    started_ = true;
    membership_dirty_ = false;
    Reset(now);
  } else if (now == next_phase_) {
    PhaseBoundary(now);
    if (now == next_phase_) next_phase_ = now + offline_delay_;
  }

  for (Session& s : sessions_) {
    s.overflow.ServeSlot(now, s.overflow_bw, &delay_);
    s.regular.ServeSlot(now, s.regular_bw, &delay_);
    if (s.departing && s.regular.empty() && s.overflow.empty()) {
      s.departing = false;
      SetOverflow(s, Bandwidth::Zero());
    }
  }
}

}  // namespace bwalloc
