// The single-session online algorithm (Section 2, Figure 3), plus the
// modified variant of Theorem 7.
//
// The algorithm works in stages, each preceded by a RESET:
//
//   RESET:  B_on := B_A; wait until the queue first empties; then STAGE.
//   STAGE:  each slot t: compute low(t) and high(t);
//           if high(t) < low(t)  -> RESET (the offline server provably
//                                   changed its bandwidth: stage certified);
//           if B_on < low(t)     -> B_on := smallest power of two >= low(t).
//
// Guarantees (validated in tests/ and bench/bench_thm6_single):
//   * delay <= D_A = 2 D_O                        (Lemma 3)
//   * utilization >= U_A = U_O / 3 in some window
//     of size <= W + 5 D_O ending at every time    (Lemma 5)
//   * changes <= log2(B_A) per completed stage,
//     and every completed stage forces >= 1
//     offline change                               (Lemma 1, Theorem 6)
//
// Variant::kModified (Theorem 7): the stage's allocation ladder starts only
// after the first W slots of the stage, during which the algorithm holds
// B_A (an extended RESET). By the paper's observation high(t)/low(t) =
// O(1/U_O) for t >= t_s + W, so the per-stage number of changes drops to
// O(log(1/U_O)) independent of B_A. (The paper defers the construction to
// the full version; this realization of the hint is documented in
// DESIGN.md.)
#pragma once

#include <cstdint>

#include "core/high_tracker.h"
#include "core/low_tracker.h"
#include "core/params.h"
#include "sim/engine_single.h"
#include "util/fixed_point.h"
#include "util/ratio.h"
#include "util/types.h"

namespace bwalloc {

// Structured view of the stage machinery: attach via SetObserver to trace
// or assert on the algorithm's decisions without peeking at internals.
// Event grammar per stage:
//   OnStageStart (LevelChange)* [OnStageCertified [OnResetDrain]] ...
class StageObserver {
 public:
  virtual ~StageObserver() = default;
  virtual void OnStageStart(Time /*ts*/) {}
  virtual void OnLevelChange(Time /*t*/, Bits /*from*/, Bits /*to*/) {}
  virtual void OnStageCertified(Time /*t*/, std::int64_t /*stage_index*/) {}
  // Entering a RESET with a non-empty queue (B_A drain in progress).
  virtual void OnResetDrain(Time /*t*/) {}
};

class SingleSessionOnline final : public SingleSessionAllocator {
 public:
  enum class Variant {
    kBase,      // Figure 3 / Theorem 6: O(log B_A)-competitive
    kModified,  // Theorem 7: O(log 1/U_O)-competitive
  };

  // Which utilization definition high(t) enforces (Section 2
  // "Utilization"): the paper's preferred local windows, or the global
  // (stage-scoped cumulative) ratio under which the algorithm keeps its
  // guarantees and the Theta(log B_A) ratio is tight.
  enum class UtilizationMode { kLocal, kGlobal };

  explicit SingleSessionOnline(
      const SingleSessionParams& params, Variant variant = Variant::kBase,
      UtilizationMode utilization = UtilizationMode::kLocal);

  Bandwidth OnSlot(Time now, Bits arrivals, Bits queue) override;
  void OnServed(Time now, Bits served, Bits queue_after) override;

  // Completed stages — each certifies at least one change by any offline
  // algorithm with (B_O, D_O, U_O) (Lemma 1).
  std::int64_t stages() const override { return completed_stages_; }

  // Introspection for tests.
  bool in_reset() const { return state_ == State::kReset; }
  Time stage_start() const { return stage_start_; }
  std::int64_t max_changes_in_any_stage() const {
    return max_changes_in_stage_;
  }
  Ratio current_low() const { return low_tracker_.current(); }

  // Attach a trace observer (not owned; nullptr detaches).
  void SetObserver(StageObserver* observer) { observer_ = observer; }

  // --- checkpoint/restore ---------------------------------------------------
  bool SupportsCheckpoint() const override { return true; }

  void SaveState(StateWriter& w) const override {
    w.Tag("SSO1");
    low_tracker_.SaveState(w);
    high_tracker_.SaveState(w);
    global_high_tracker_.SaveState(w);
    w.U8(state_ == State::kStage ? 1 : 0);
    w.Bool(started_);
    w.I64(stage_start_);
    w.I64(level_);
    w.I64(current_.raw());
    w.Bool(have_allocation_);
    w.I64(completed_stages_);
    w.I64(changes_in_stage_);
    w.I64(max_changes_in_stage_);
  }

  void LoadState(StateReader& r) override {
    r.Tag("SSO1");
    low_tracker_.LoadState(r);
    high_tracker_.LoadState(r);
    global_high_tracker_.LoadState(r);
    state_ = r.U8() != 0 ? State::kStage : State::kReset;
    started_ = r.Bool();
    stage_start_ = r.I64();
    level_ = r.I64();
    current_ = Bandwidth::FromRaw(r.I64());
    have_allocation_ = r.Bool();
    completed_stages_ = r.I64();
    changes_in_stage_ = r.I64();
    max_changes_in_stage_ = r.I64();
  }

 private:
  enum class State { kReset, kStage };

  void NoteAllocation(Bandwidth bw);

  SingleSessionParams params_;
  Variant variant_;
  UtilizationMode utilization_mode_;
  LowTracker low_tracker_;
  HighTracker high_tracker_;
  GlobalHighTracker global_high_tracker_;

  StageObserver* observer_ = nullptr;
  State state_ = State::kReset;
  bool started_ = false;
  Time stage_start_ = kNoTime;
  Bits level_ = 0;  // current power-of-two allocation within the stage
  Bandwidth current_;
  bool have_allocation_ = false;

  std::int64_t completed_stages_ = 0;
  std::int64_t changes_in_stage_ = 0;
  std::int64_t max_changes_in_stage_ = 0;
};

}  // namespace bwalloc
