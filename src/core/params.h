// Parameter sets for the paper's algorithms, with the online/offline slack
// relations of Section 1.1 encoded as derived quantities:
//
//   single session:  D_O = D_A / 2,  U_O = 3 U_A,  B_O = B_A
//   multi session:   B_A = 4 B_O (phased) / 5 B_O (continuous), D_A = 2 D_O
//   combined:        B_A = 7 B_O (phased) / 8 B_O (continuous),
//                    D_A = 2 D_O,  U_A = U_O / 3
#pragma once

#include <vector>

#include "util/assert.h"
#include "util/fixed_point.h"
#include "util/power_of_two.h"
#include "util/ratio.h"
#include "util/types.h"

namespace bwalloc {

// Parameters of the single-session online algorithm (Section 2). The user
// supplies the online guarantees (B_A, D_A, U_A, W); the offline comparator
// parameters are derived.
struct SingleSessionParams {
  Bits max_bandwidth = 0;   // B_A, power of two
  Time max_delay = 0;       // D_A, even, >= 2
  Ratio min_utilization;    // U_A, <= 1/3 (so U_O = 3 U_A <= 1)
  Time window = 0;          // W, the local-utilization window, >= D_O

  Time offline_delay() const { return max_delay / 2; }            // D_O
  Ratio offline_utilization() const {                             // U_O
    return Ratio(3 * min_utilization.num(), min_utilization.den());
  }
  Bits offline_bandwidth() const { return max_bandwidth; }        // B_O
  int levels() const { return CeilLog2(max_bandwidth); }          // l_A

  void Validate() const {
    BW_REQUIRE(max_bandwidth >= 2 && IsPowerOfTwo(max_bandwidth),
               "B_A must be a power of two >= 2");
    BW_REQUIRE(max_delay >= 2 && max_delay % 2 == 0,
               "D_A must be even and >= 2");
    BW_REQUIRE(min_utilization.num() > 0, "U_A must be positive");
    BW_REQUIRE(3 * min_utilization.num() <= min_utilization.den(),
               "U_A must be <= 1/3 so that U_O = 3 U_A <= 1");
    BW_REQUIRE(window >= offline_delay(), "W must be >= D_O (Section 2)");
  }
};

// Parameters of the multi-session algorithms (Section 3). The caller
// supplies the offline comparator's (B_O, D_O); the online resource bounds
// follow from Theorems 14 and 17.
struct MultiSessionParams {
  std::int64_t sessions = 0;  // k >= 2
  Bits offline_bandwidth = 0; // B_O
  Time offline_delay = 0;     // D_O >= 1
  // Optional per-session share weights (integer proportions). Empty means
  // the paper's equal B_O/k shares; otherwise session i's base share and
  // increment quantum is B_O * weights[i] / sum(weights) — a natural
  // generalization for known-skewed tenants. The stage accounting is
  // untouched (a stage still ends when the regular channel exceeds 2 B_O).
  std::vector<std::int64_t> weights;

  Time online_delay() const { return 2 * offline_delay; }  // D_A

  void Validate() const {
    BW_REQUIRE(sessions >= 2, "multi-session: k must be >= 2");
    BW_REQUIRE(offline_bandwidth >= 1, "B_O must be >= 1");
    BW_REQUIRE(offline_delay >= 1, "D_O must be >= 1");
    if (!weights.empty()) {
      BW_REQUIRE(static_cast<std::int64_t>(weights.size()) == sessions,
                 "multi-session: one weight per session");
      for (const std::int64_t w : weights) {
        BW_REQUIRE(w >= 1, "multi-session: weights must be >= 1");
      }
    }
  }

  // Session i's share of B_O as a fixed-point bandwidth.
  Bandwidth Share(std::int64_t i) const {
    const Bandwidth total = Bandwidth::FromBitsPerSlot(offline_bandwidth);
    if (weights.empty()) return total / sessions;
    std::int64_t sum = 0;
    for (const std::int64_t w : weights) sum += w;
    return Bandwidth::FromRaw(
        total.raw() / sum * weights[static_cast<std::size_t>(i)]);
  }
};

// Parameters of the combined algorithm (Section 4), given in terms of the
// offline comparator (B_O, D_O, U_O); the online algorithm guarantees
// B_A = 7 B_O (phased inner multi-session algorithm), D_A = 2 D_O and
// U_A = U_O / 3.
struct CombinedParams {
  std::int64_t sessions = 0;    // k > 1
  Bits offline_bandwidth = 0;   // B_O, power of two (so B_on levels nest)
  Time offline_delay = 0;       // D_O >= 1
  Ratio offline_utilization;    // U_O <= 1
  Time window = 0;              // W >= D_O
  // Which multi-session machinery runs inside the global stages: the
  // phased algorithm (B_A = 7 B_O) or the continuous one (B_A = 8 B_O).
  bool continuous_inner = false;

  Bits online_bandwidth() const {                                  // B_A
    return (continuous_inner ? 8 : 7) * offline_bandwidth;
  }
  Time online_delay() const { return 2 * offline_delay; }          // D_A
  Ratio online_utilization() const {                               // U_A
    return Ratio(offline_utilization.num(), 3 * offline_utilization.den());
  }

  void Validate() const {
    BW_REQUIRE(sessions >= 2, "combined: k must be >= 2");
    BW_REQUIRE(offline_bandwidth >= 2 && IsPowerOfTwo(offline_bandwidth),
               "B_O must be a power of two >= 2");
    BW_REQUIRE(offline_delay >= 1, "D_O must be >= 1");
    BW_REQUIRE(offline_utilization.num() > 0, "U_O must be positive");
    BW_REQUIRE(offline_utilization.num() <= offline_utilization.den(),
               "U_O must be <= 1");
    BW_REQUIRE(window >= offline_delay, "W must be >= D_O");
  }
};

}  // namespace bwalloc
