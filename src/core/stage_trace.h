// Bridges the single-session algorithm's StageObserver callbacks into the
// obs tracing layer, so CLI runs and batch cells can record stage starts,
// certifications, RESET drains, and ladder level changes without the
// algorithm knowing about sinks or masks.
#pragma once

#include "core/single_session.h"
#include "obs/tracer.h"

namespace bwalloc {

class TracerStageObserver final : public StageObserver {
 public:
  TracerStageObserver(Tracer tracer, std::int64_t session = -1)
      : tracer_(std::move(tracer)), session_(session) {}

  void OnStageStart(Time ts) override {
    tracer_.Emit(TraceEventType::kStageStart, ts, session_);
  }

  void OnLevelChange(Time t, Bits from, Bits to) override {
    tracer_.Emit(TraceEventType::kLevelChange, t, session_, from, to);
  }

  void OnStageCertified(Time t, std::int64_t stage_index) override {
    tracer_.Emit(TraceEventType::kStageCertified, t, session_, stage_index);
  }

  void OnResetDrain(Time t) override {
    tracer_.Emit(TraceEventType::kResetDrain, t, session_);
  }

 private:
  Tracer tracer_;
  std::int64_t session_;
};

}  // namespace bwalloc
