#include "core/single_session.h"

#include "util/power_of_two.h"

namespace bwalloc {

SingleSessionOnline::SingleSessionOnline(const SingleSessionParams& params,
                                         Variant variant,
                                         UtilizationMode utilization)
    : params_(params),
      variant_(variant),
      utilization_mode_(utilization),
      low_tracker_(params.offline_delay()),
      high_tracker_(params.window, params.offline_utilization(),
                    params.max_bandwidth),
      global_high_tracker_(params.offline_utilization(),
                           params.max_bandwidth) {
  params_.Validate();
}

void SingleSessionOnline::NoteAllocation(Bandwidth bw) {
  if (have_allocation_ && bw != current_) ++changes_in_stage_;
  if (changes_in_stage_ > max_changes_in_stage_) {
    max_changes_in_stage_ = changes_in_stage_;
  }
  current_ = bw;
  have_allocation_ = true;
}

Bandwidth SingleSessionOnline::OnSlot(Time now, Bits arrivals, Bits queue) {
  if (!started_) {
    // "The algorithm is started by invoking RESET": the queue is empty at
    // connection time, so that first RESET has zero duration and the first
    // stage begins immediately.
    started_ = true;
    state_ = State::kStage;
    stage_start_ = now;
    level_ = 0;
    low_tracker_.StartStage(now);
    high_tracker_.StartStage(now);
    global_high_tracker_.StartStage(now);
    if (observer_ != nullptr) observer_->OnStageStart(now);
  }
  if (state_ == State::kReset) {
    // During RESET the allocation is pinned to B_A until the queue first
    // empties (observed in OnServed). An already-empty queue means the
    // RESET has zero duration in the paper's continuous time — allocate
    // nothing rather than burn a B_A slot with no data.
    const Bandwidth bw = queue > 0
                             ? Bandwidth::FromBitsPerSlot(params_.max_bandwidth)
                             : Bandwidth::Zero();
    NoteAllocation(bw);
    return bw;
  }

  // STAGE. low(t) excludes slot-t arrivals; high(t) includes them.
  const Ratio low = low_tracker_.LowAt(now);
  Ratio high;
  if (utilization_mode_ == UtilizationMode::kLocal) {
    high_tracker_.RecordArrivals(now, arrivals);
    high = high_tracker_.HighAt();
  } else {
    global_high_tracker_.RecordArrivals(now, arrivals);
    high = global_high_tracker_.HighAt();
  }
  low_tracker_.RecordArrivals(arrivals);

  // The offline server is also capped at B_O = B_A, so low(t) > B_A equally
  // certifies an offline change (this only triggers on inputs that are not
  // (B_O, D_O)-shaped; shaped inputs keep low <= B_O within a stage).
  if (high < low || Ratio(params_.max_bandwidth, 1) < low) {
    // The offline algorithm cannot have kept one bandwidth value over
    // [t_s, t]: the stage is certified and a RESET begins (this slot).
    ++completed_stages_;
    changes_in_stage_ = 0;
    state_ = State::kReset;
    stage_start_ = kNoTime;
    if (observer_ != nullptr) {
      observer_->OnStageCertified(now, completed_stages_);
      if (queue > 0) observer_->OnResetDrain(now);
    }
    const Bandwidth bw = queue > 0
                             ? Bandwidth::FromBitsPerSlot(params_.max_bandwidth)
                             : Bandwidth::Zero();
    NoteAllocation(bw);
    return bw;
  }

  if (variant_ == Variant::kModified && now < stage_start_ + params_.window) {
    // Theorem 7: hold B_A through the first W slots of the stage so the
    // ladder starts only when high/low is already O(1/U_O). While the
    // stage is still silent (nothing arrived, nothing queued) allocate
    // nothing, as in the base RESET.
    const Bandwidth bw = (queue > 0 || !low.is_zero())
                             ? Bandwidth::FromBitsPerSlot(params_.max_bandwidth)
                             : Bandwidth::Zero();
    NoteAllocation(bw);
    return bw;
  }

  if (!low.is_zero() && (level_ == 0 || Ratio(level_, 1) < low)) {
    const Bits from = level_;
    level_ = CeilPowerOfTwoAtLeast(low);
    BW_CHECK(level_ <= params_.max_bandwidth,
             "allocation level exceeded B_A on a feasible input");
    if (observer_ != nullptr && level_ != from) {
      observer_->OnLevelChange(now, from, level_);
    }
  }
  const Bandwidth bw = Bandwidth::FromBitsPerSlot(level_);
  NoteAllocation(bw);
  return bw;
}

void SingleSessionOnline::OnServed(Time now, Bits /*served*/,
                                   Bits queue_after) {
  if (state_ == State::kReset && queue_after == 0) {
    // "Wait until the first time Q is empty, then STAGE": the new stage
    // starts with the next slot.
    state_ = State::kStage;
    stage_start_ = now + 1;
    level_ = 0;
    low_tracker_.StartStage(stage_start_);
    high_tracker_.StartStage(stage_start_);
    global_high_tracker_.StartStage(stage_start_);
    if (observer_ != nullptr) observer_->OnStageStart(stage_start_);
  }
}

}  // namespace bwalloc
