#include "core/admission.h"

#include <algorithm>

#include "util/assert.h"
#include "util/fixed_point.h"

namespace bwalloc {

const char* ToString(AdmissionPolicyKind kind) {
  switch (kind) {
    case AdmissionPolicyKind::kGreedy:
      return "greedy";
    case AdmissionPolicyKind::kThreshold:
      return "threshold";
    case AdmissionPolicyKind::kLedger:
      return "ledger";
  }
  return "unknown";
}

void AdmissionConfig::Validate() const {
  BW_REQUIRE(capacity > 0, "AdmissionConfig: capacity must be positive");
  BW_REQUIRE(threshold_bp >= 0 && threshold_bp <= 10000,
             "AdmissionConfig: threshold outside [0, 10000] basis points");
  BW_REQUIRE(policy != AdmissionPolicyKind::kLedger || horizon > 0,
             "AdmissionConfig: reservation ledger needs a horizon");
}

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {
  config_.Validate();
  if (config_.policy == AdmissionPolicyKind::kLedger) {
    ledger_.assign(static_cast<std::size_t>(config_.horizon), 0);
  }
}

AdmissionVerdict AdmissionController::Decide(const SessionSpec& spec,
                                             Time /*now*/) {
  switch (config_.policy) {
    case AdmissionPolicyKind::kGreedy:
      if (committed_ + spec.rate > config_.capacity) {
        return {false, kRejectCapacity};
      }
      committed_ += spec.rate;
      return {true, 0};
    case AdmissionPolicyKind::kThreshold: {
      // (committed + rate) / capacity <= threshold_bp / 10000, cross-
      // multiplied in 128 bits so no product can wrap.
      const Int128 load = static_cast<Int128>(committed_ + spec.rate) * 10000;
      const Int128 room =
          static_cast<Int128>(config_.threshold_bp) * config_.capacity;
      if (load > room) return {false, kRejectThreshold};
      committed_ += spec.rate;
      return {true, 0};
    }
    case AdmissionPolicyKind::kLedger: {
      const Time lo = std::min(spec.start(), config_.horizon);
      const Time hi = std::min(spec.depart, config_.horizon);
      for (Time t = lo; t < hi; ++t) {
        if (ledger_[static_cast<std::size_t>(t)] + spec.rate >
            config_.capacity) {
          return {false, kRejectLedger};
        }
      }
      for (Time t = lo; t < hi; ++t) {
        ledger_[static_cast<std::size_t>(t)] += spec.rate;
      }
      committed_ += spec.rate;
      return {true, 0};
    }
  }
  BW_CHECK(false, "AdmissionController: unknown policy");
  return {false, 0};
}

void AdmissionController::Release(const SessionSpec& spec, Time now) {
  committed_ -= spec.rate;
  BW_CHECK(committed_ >= 0, "AdmissionController: release below zero");
  if (config_.policy == AdmissionPolicyKind::kLedger) {
    // Departure at spec.depart releases nothing (the reservation expires on
    // its own); a pre-start shed returns the whole window.
    const Time lo = std::min(std::max(now, spec.start()), config_.horizon);
    const Time hi = std::min(spec.depart, config_.horizon);
    for (Time t = lo; t < hi; ++t) {
      ledger_[static_cast<std::size_t>(t)] -= spec.rate;
      BW_CHECK(ledger_[static_cast<std::size_t>(t)] >= 0,
               "AdmissionController: ledger release below zero");
    }
  }
}

void AdmissionController::SaveState(StateWriter& w) const {
  w.Tag("ADM1");
  w.I64(committed_);
  w.U64(ledger_.size());
  for (const Bits b : ledger_) w.I64(b);
}

void AdmissionController::LoadState(StateReader& r) {
  r.Tag("ADM1");
  committed_ = r.I64();
  if (committed_ < 0) {
    throw StateFormatError("admission committed sum negative");
  }
  const std::uint64_t n = r.Count(static_cast<std::uint64_t>(
      config_.policy == AdmissionPolicyKind::kLedger ? config_.horizon : 0));
  if (n != ledger_.size()) {
    throw StateFormatError("admission ledger length mismatch");
  }
  for (auto& b : ledger_) {
    b = r.I64();
    if (b < 0 || b > config_.capacity) {
      throw StateFormatError("admission ledger entry out of range");
    }
  }
}

}  // namespace bwalloc
