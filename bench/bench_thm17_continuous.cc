// THM17 — Theorem 17 reproduction: the continuous multi-session algorithm
// is a (5 B_O, 2 D_O)-algorithm with at most 3k times the offline changes —
// head-to-head with the phased algorithm on the same inputs (the paper
// presents continuous as "more natural to implement" at the price of one
// extra B_O of overflow headroom).
#include <algorithm>
#include <iostream>

#include "analysis/artifact.h"
#include "analysis/table.h"
#include "core/multi_continuous.h"
#include "core/multi_phased.h"
#include "offline/offline_multi.h"
#include "sim/engine_multi.h"
#include "traffic/workload_suite.h"

namespace {
using namespace bwalloc;

constexpr Time kDo = 8;
constexpr Time kHorizon = 8000;

}  // namespace

int main(int argc, char** argv) {
  const BenchArtifacts artifacts(argc, argv);
  Table table({"k", "algo", "chg/stage", "ratio vs offline",
               "max delay (<=16)", "mean delay", "peak ovf/B_O",
               "budget"});

  for (const std::int64_t k : {2, 4, 8, 16, 32}) {
    const Bits bo = 16 * k;
    const auto traces = MultiSessionWorkload(
        MultiWorkloadKind::kRotatingHotspot, k, bo, kDo, kHorizon,
        static_cast<std::uint64_t>(200 + k));
    const MultiOfflineSchedule offline = GreedyMultiSchedule(traces, bo, kDo);
    const std::int64_t off_changes =
        offline.feasible ? std::max<std::int64_t>(1, offline.local_changes())
                         : 1;

    MultiSessionParams p;
    p.sessions = k;
    p.offline_bandwidth = bo;
    p.offline_delay = kDo;

    for (const bool continuous : {false, true}) {
      MultiEngineOptions opt;
      opt.drain_slots = 4 * kDo;
      MultiRunResult r;
      if (continuous) {
        ContinuousMulti sys(p);
        r = RunMultiSession(traces, sys, opt);
      } else {
        PhasedMulti sys(p);
        r = RunMultiSession(traces, sys, opt);
      }
      const double per_stage =
          static_cast<double>(r.local_changes) /
          static_cast<double>(std::max<std::int64_t>(1, r.stages + 1));
      table.AddRow(
          {Table::Num(k), continuous ? "continuous" : "phased",
           Table::Num(per_stage, 1),
           Table::Num(static_cast<double>(r.local_changes) /
                          static_cast<double>(off_changes),
                      2),
           Table::Num(r.delay.max_delay()),
           Table::Num(r.delay.MeanDelay(), 2),
           Table::Num(r.peak_overflow_allocation.ToDouble() /
                          static_cast<double>(bo),
                      2),
           continuous ? "5 B_O" : "4 B_O"});
    }
  }

  std::printf("== THM17: continuous vs phased multi-session ==\n");
  std::printf("rotating-hotspot workload, B_O = 16k, D_O=%lld, %lld slots\n\n",
              static_cast<long long>(kDo),
              static_cast<long long>(kHorizon));
  table.PrintAscii(std::cout);
  artifacts.Save("thm17_continuous", table);
  std::printf(
      "\nExpected shape (Theorem 17): both algorithms live in the O(k) "
      "changes-per-stage\nregime and meet delay 2 D_O = 16; the continuous "
      "variant's overflow channel may\nreach 3 B_O (Lemma 16) where the "
      "phased stays within 2 B_O (Lemma 10).\n");
  return 0;
}
