// THM17 — Theorem 17 reproduction: the continuous multi-session algorithm
// is a (5 B_O, 2 D_O)-algorithm with at most 3k times the offline changes —
// head-to-head with the phased algorithm on the same inputs (the paper
// presents continuous as "more natural to implement" at the price of one
// extra B_O of overflow headroom).
//
// The (k, algorithm) cells plus the per-k offline references run sharded
// on the batch runner (--jobs=N); rows emit in sweep order for every N.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "core/multi_continuous.h"
#include "core/multi_phased.h"
#include "offline/offline_multi.h"
#include "reporter.h"
#include "runner/batch_runner.h"
#include "sim/engine_multi.h"
#include "traffic/workload_suite.h"

namespace {
using namespace bwalloc;

constexpr Time kDo = 8;
constexpr Time kHorizon = 8000;

const std::vector<std::int64_t> kSessionCounts = {2, 4, 8, 16, 32};

std::vector<std::vector<Bits>> TracesFor(std::int64_t k, Time horizon) {
  return MultiSessionWorkload(MultiWorkloadKind::kRotatingHotspot, k, 16 * k,
                              kDo, horizon,
                              static_cast<std::uint64_t>(200 + k));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("thm17", &argc, argv);
  const Time horizon = rep.quick() ? 2000 : kHorizon;
  const std::vector<std::int64_t> ks =
      rep.quick() ? std::vector<std::int64_t>{2, 4, 8} : kSessionCounts;
  BatchRunner runner(BatchOptions{rep.jobs(), 0});
  const auto n = static_cast<std::int64_t>(ks.size());

  const auto start = std::chrono::steady_clock::now();
  BatchResult<std::int64_t> offline;
  BatchResult<MultiRunResult> online;
  {
    ScopedTimer timer(rep.profile(), "sweep");
    // Stage 1: the greedy offline reference, one cell per k.
    offline = runner.Map<std::int64_t>(
        "thm17-offline", n, [&](const TaskContext& ctx) {
          const std::int64_t k = ks[static_cast<std::size_t>(ctx.key.index)];
          const MultiOfflineSchedule s =
              GreedyMultiSchedule(TracesFor(k, horizon), 16 * k, kDo);
          return s.feasible ? std::max<std::int64_t>(1, s.local_changes())
                            : std::int64_t{1};
        });
    // Stage 2: the online cells — index = k_idx * 2 + (continuous ? 1 : 0).
    online = runner.Map<MultiRunResult>(
        "thm17-online", 2 * n, [&](const TaskContext& ctx) {
          const std::int64_t k =
              ks[static_cast<std::size_t>(ctx.key.index / 2)];
          const bool continuous = (ctx.key.index % 2) != 0;
          MultiSessionParams p;
          p.sessions = k;
          p.offline_bandwidth = 16 * k;
          p.offline_delay = kDo;
          MultiEngineOptions opt;
          opt.drain_slots = 4 * kDo;
          const auto traces = TracesFor(k, horizon);
          if (continuous) {
            ContinuousMulti sys(p);
            return RunMultiSession(traces, sys, opt);
          }
          PhasedMulti sys(p);
          return RunMultiSession(traces, sys, opt);
        });
  }
  rep.CountWork(3 * n * horizon, 3 * n);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!offline.ok() || !online.ok()) {
    std::fprintf(stderr, "thm17: %s%s\n",
                 FormatErrors(offline.errors).c_str(),
                 FormatErrors(online.errors).c_str());
    return 1;
  }

  Table table({"k", "algo", "chg/stage", "ratio vs offline",
               "max delay (<=16)", "mean delay", "peak ovf/B_O",
               "budget"});
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t k = ks[static_cast<std::size_t>(i)];
    const Bits bo = 16 * k;
    const std::int64_t off_changes =
        *offline.results[static_cast<std::size_t>(i)];
    for (const bool continuous : {false, true}) {
      const MultiRunResult& r = *online.results[static_cast<std::size_t>(
          2 * i + (continuous ? 1 : 0))];
      const double per_stage =
          static_cast<double>(r.local_changes) /
          static_cast<double>(std::max<std::int64_t>(1, r.stages + 1));
      const double ovf_over_bo =
          r.peak_overflow_allocation.ToDouble() / static_cast<double>(bo);
      table.AddRow(
          {Table::Num(k), continuous ? "continuous" : "phased",
           Table::Num(per_stage, 1),
           Table::Num(static_cast<double>(r.local_changes) /
                          static_cast<double>(off_changes),
                      2),
           Table::Num(r.delay.max_delay()),
           Table::Num(r.delay.MeanDelay(), 2),
           Table::Num(ovf_over_bo, 2),
           continuous ? "5 B_O" : "4 B_O"});
      const std::string label = "k=" + Table::Num(k) + "," +
                                (continuous ? "continuous" : "phased");
      rep.RowMax(label, "max_delay",
                 static_cast<double>(r.delay.max_delay()),
                 static_cast<double>(2 * kDo));
      // Lemma 10 (phased) vs Lemma 16 (continuous) overflow headroom.
      rep.RowMax(label, "peak_ovf_over_bo", ovf_over_bo,
                 continuous ? 3.0 : 2.0);
      // Our per-variable counting of the paper's 3k per-stage events; the
      // continuous variant pays one extra k for its rolling stage ends.
      rep.RowMax(label, "chg_per_stage", per_stage,
                 static_cast<double>((continuous ? 5 : 4) * k));
      rep.RowInfo(label, "ratio_vs_offline",
                  static_cast<double>(r.local_changes) /
                      static_cast<double>(off_changes));
    }
  }

  std::printf("== THM17: continuous vs phased multi-session ==\n");
  std::printf("rotating-hotspot workload, B_O = 16k, D_O=%lld, %lld slots\n\n",
              static_cast<long long>(kDo),
              static_cast<long long>(horizon));
  table.PrintAscii(std::cout);
  rep.Save("thm17_continuous", table);
  std::printf(
      "\nExpected shape (Theorem 17): both algorithms live in the O(k) "
      "changes-per-stage\nregime and meet delay 2 D_O = 16; the continuous "
      "variant's overflow channel may\nreach 3 B_O (Lemma 16) where the "
      "phased stays within 2 B_O (Lemma 10).\n");
  std::fprintf(stderr, "[thm17] %lld cells, %d jobs, %.2fs wall\n",
               static_cast<long long>(3 * n), runner.jobs(), secs);
  return rep.Finish();
}
