// THM17 — Theorem 17 reproduction: the continuous multi-session algorithm
// is a (5 B_O, 2 D_O)-algorithm with at most 3k times the offline changes —
// head-to-head with the phased algorithm on the same inputs (the paper
// presents continuous as "more natural to implement" at the price of one
// extra B_O of overflow headroom).
//
// The (k, algorithm) cells plus the per-k offline references run sharded
// on the batch runner (--jobs=N); rows emit in sweep order for every N.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "analysis/artifact.h"
#include "analysis/table.h"
#include "core/multi_continuous.h"
#include "core/multi_phased.h"
#include "offline/offline_multi.h"
#include "runner/batch_runner.h"
#include "sim/engine_multi.h"
#include "traffic/workload_suite.h"

namespace {
using namespace bwalloc;

constexpr Time kDo = 8;
constexpr Time kHorizon = 8000;

const std::vector<std::int64_t> kSessionCounts = {2, 4, 8, 16, 32};

std::vector<std::vector<Bits>> TracesFor(std::int64_t k) {
  return MultiSessionWorkload(MultiWorkloadKind::kRotatingHotspot, k, 16 * k,
                              kDo, kHorizon,
                              static_cast<std::uint64_t>(200 + k));
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = StripJobsFlag(&argc, argv, ThreadPool::kAutoThreads);
  const BenchArtifacts artifacts(argc, argv);
  BatchRunner runner(BatchOptions{jobs, 0});
  const auto n = static_cast<std::int64_t>(kSessionCounts.size());

  const auto start = std::chrono::steady_clock::now();
  // Stage 1: the greedy offline reference, one cell per k.
  const auto offline = runner.Map<std::int64_t>(
      "thm17-offline", n, [](const TaskContext& ctx) {
        const std::int64_t k =
            kSessionCounts[static_cast<std::size_t>(ctx.key.index)];
        const MultiOfflineSchedule s =
            GreedyMultiSchedule(TracesFor(k), 16 * k, kDo);
        return s.feasible ? std::max<std::int64_t>(1, s.local_changes())
                          : std::int64_t{1};
      });
  // Stage 2: the online cells — index = k_idx * 2 + (continuous ? 1 : 0).
  const auto online = runner.Map<MultiRunResult>(
      "thm17-online", 2 * n, [](const TaskContext& ctx) {
        const std::int64_t k =
            kSessionCounts[static_cast<std::size_t>(ctx.key.index / 2)];
        const bool continuous = (ctx.key.index % 2) != 0;
        MultiSessionParams p;
        p.sessions = k;
        p.offline_bandwidth = 16 * k;
        p.offline_delay = kDo;
        MultiEngineOptions opt;
        opt.drain_slots = 4 * kDo;
        const auto traces = TracesFor(k);
        if (continuous) {
          ContinuousMulti sys(p);
          return RunMultiSession(traces, sys, opt);
        }
        PhasedMulti sys(p);
        return RunMultiSession(traces, sys, opt);
      });
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!offline.ok() || !online.ok()) {
    std::fprintf(stderr, "thm17: %s%s\n",
                 FormatErrors(offline.errors).c_str(),
                 FormatErrors(online.errors).c_str());
    return 1;
  }

  Table table({"k", "algo", "chg/stage", "ratio vs offline",
               "max delay (<=16)", "mean delay", "peak ovf/B_O",
               "budget"});
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int64_t k = kSessionCounts[static_cast<std::size_t>(i)];
    const Bits bo = 16 * k;
    const std::int64_t off_changes =
        *offline.results[static_cast<std::size_t>(i)];
    for (const bool continuous : {false, true}) {
      const MultiRunResult& r = *online.results[static_cast<std::size_t>(
          2 * i + (continuous ? 1 : 0))];
      const double per_stage =
          static_cast<double>(r.local_changes) /
          static_cast<double>(std::max<std::int64_t>(1, r.stages + 1));
      table.AddRow(
          {Table::Num(k), continuous ? "continuous" : "phased",
           Table::Num(per_stage, 1),
           Table::Num(static_cast<double>(r.local_changes) /
                          static_cast<double>(off_changes),
                      2),
           Table::Num(r.delay.max_delay()),
           Table::Num(r.delay.MeanDelay(), 2),
           Table::Num(r.peak_overflow_allocation.ToDouble() /
                          static_cast<double>(bo),
                      2),
           continuous ? "5 B_O" : "4 B_O"});
    }
  }

  std::printf("== THM17: continuous vs phased multi-session ==\n");
  std::printf("rotating-hotspot workload, B_O = 16k, D_O=%lld, %lld slots\n\n",
              static_cast<long long>(kDo),
              static_cast<long long>(kHorizon));
  table.PrintAscii(std::cout);
  artifacts.Save("thm17_continuous", table);
  std::printf(
      "\nExpected shape (Theorem 17): both algorithms live in the O(k) "
      "changes-per-stage\nregime and meet delay 2 D_O = 16; the continuous "
      "variant's overflow channel may\nreach 3 B_O (Lemma 16) where the "
      "phased stays within 2 B_O (Lemma 10).\n");
  std::fprintf(stderr, "[thm17] %lld cells, %d jobs, %.2fs wall\n",
               static_cast<long long>(3 * n), runner.jobs(), secs);
  return 0;
}
