// FAULTS-MULTI — unreliable control plane erosion grid for the
// multi-session algorithms (extension of bench_faults; the paper's
// Section 3/4 algorithms renegotiate per session, and every one of those
// renegotiations crosses the same fallible switch software).
//
// Sweep (per-hop loss rate, per-hop denial rate) x algorithm. Every cell
// runs the chosen multi-session system twice over the same per-session
// traces behind the same 3-hop path: once through a fault-free
// RobustMultiSessionAdapter (the Theorem 14/17 baseline at that latency)
// and once through a fault-injected one, with each session on its own
// seed-derived fault lane. The table reports the measured erosion — extra
// delay, lost utilization, extra local changes — next to the merged
// per-session degraded-mode counters.
//
// The (level x algo x kind x seed) grid runs sharded on the batch runner;
// pass --jobs=N (default: hardware concurrency). Results reduce in
// task-index order, so stdout is byte-identical for every N.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "core/combined.h"
#include "core/multi_continuous.h"
#include "core/multi_phased.h"
#include "net/multi_faults.h"
#include "reporter.h"
#include "runner/batch_runner.h"
#include "sim/engine_multi.h"
#include "traffic/workload_suite.h"

namespace {
using namespace bwalloc;

constexpr std::int64_t kSessions = 4;
constexpr Bits kBoPerSession = 16;  // B_O = 64
constexpr Time kDo = 8;
constexpr std::int64_t kHops = 3;
constexpr Time kHorizon = 5000;
// Shortened by --quick before the sweep starts; read-only afterwards.
Time g_horizon = kHorizon;

struct FaultLevel {
  double loss;
  double denial;
  Time jitter;
};

const std::vector<FaultLevel> kLevels = {
    {0.00, 0.00, 0}, {0.10, 0.00, 2}, {0.25, 0.00, 2},
    {0.00, 0.10, 2}, {0.10, 0.10, 2},
};
const std::vector<std::string> kAlgos = {"phased", "continuous", "combined"};
const std::vector<MultiWorkloadKind> kKinds = {
    MultiWorkloadKind::kRotatingHotspot, MultiWorkloadKind::kChurn};
const std::vector<std::uint64_t> kSeeds = {31, 32};

Bits DeclaredTotal(const std::string& algo) {
  const Bits bo = kBoPerSession * kSessions;
  return (algo == "phased" ? 4 : algo == "continuous" ? 5 : 7) * bo;
}

std::unique_ptr<MultiSessionSystem> MakeSystem(const std::string& algo) {
  const Bits bo = kBoPerSession * kSessions;
  if (algo == "combined") {
    CombinedParams p;
    p.sessions = kSessions;
    p.offline_bandwidth = bo;
    p.offline_delay = kDo;
    p.offline_utilization = Ratio(1, 2);
    p.window = 2 * kDo;
    return std::make_unique<CombinedOnline>(p);
  }
  MultiSessionParams p;
  p.sessions = kSessions;
  p.offline_bandwidth = bo;
  p.offline_delay = kDo;
  if (algo == "phased") return std::make_unique<PhasedMulti>(p);
  return std::make_unique<ContinuousMulti>(p);
}

struct CellOut {
  Time base_delay = 0;
  Time fault_delay = 0;
  double base_util = 0;
  double fault_util = 0;
  std::int64_t base_changes = 0;
  std::int64_t fault_changes = 0;
  Bits final_queue = 0;
  bool conserved = false;
  bool capped = false;
  FaultStats faults;
};

MultiRunResult RunOne(const std::vector<std::vector<Bits>>& traces,
                      const std::string& algo, const FaultPlan& plan) {
  RobustMultiOptions mopts;
  mopts.fallback_bandwidth = DeclaredTotal(algo);
  RobustMultiSessionAdapter adapter(MakeSystem(algo),
                                    NetworkPath::Uniform(kHops, 1, 1.0), plan,
                                    mopts);
  MultiEngineOptions opt;
  opt.drain_slots = 8 * kDo + 64 * kHops;
  MultiRunResult r = RunMultiSession(traces, adapter, opt);
  r.faults = adapter.fault_stats();
  r.per_session_faults = adapter.per_session_fault_stats();
  return r;
}

CellOut RunCell(const TaskContext& ctx) {
  const std::int64_t per_level = static_cast<std::int64_t>(
      kAlgos.size() * kKinds.size() * kSeeds.size());
  const std::int64_t per_algo =
      static_cast<std::int64_t>(kKinds.size() * kSeeds.size());
  const std::int64_t i = ctx.key.index;
  const FaultLevel& level = kLevels[static_cast<std::size_t>(i / per_level)];
  const std::string& algo =
      kAlgos[static_cast<std::size_t>((i % per_level) / per_algo)];
  const MultiWorkloadKind kind = kKinds[static_cast<std::size_t>(
      (i % per_algo) / static_cast<std::int64_t>(kSeeds.size()))];
  const std::uint64_t seed =
      kSeeds[static_cast<std::size_t>(i %
                                      static_cast<std::int64_t>(kSeeds.size()))];

  const auto traces = MultiSessionWorkload(kind, kSessions,
                                           kBoPerSession * kSessions, kDo,
                                           g_horizon, seed);

  FaultPlan plan;
  plan.loss_rate = level.loss;
  plan.denial_rate = level.denial;
  plan.max_jitter = level.jitter;
  plan.seed = ctx.seed;

  const MultiRunResult base = RunOne(traces, algo, FaultPlan{});
  const MultiRunResult faulty = RunOne(traces, algo, plan);

  CellOut out;
  out.base_delay = base.delay.max_delay();
  out.fault_delay = faulty.delay.max_delay();
  out.base_util = base.global_utilization;
  out.fault_util = faulty.global_utilization;
  out.base_changes = base.local_changes;
  out.fault_changes = faulty.local_changes;
  out.final_queue = faulty.final_queue;
  out.conserved =
      faulty.total_arrivals == faulty.total_delivered + faulty.final_queue;
  // Stale per-lane commits mix intents from different control-model slots
  // and a fallback lane drains at the declared total, so the sound cap is
  // k times the declared total, not the Theorem 14/17 cap itself.
  out.capped = faulty.peak_total_allocation <=
               Bandwidth::FromBitsPerSlot(kSessions * DeclaredTotal(algo));
  out.faults = faulty.faults;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("faults_multi", &argc, argv);
  if (rep.quick()) g_horizon = 1500;
  BatchRunner runner(BatchOptions{rep.jobs(), 0});

  const std::int64_t per_level = static_cast<std::int64_t>(
      kAlgos.size() * kKinds.size() * kSeeds.size());
  const std::int64_t cells =
      static_cast<std::int64_t>(kLevels.size()) * per_level;

  const auto start = std::chrono::steady_clock::now();
  BatchResult<CellOut> batch;
  {
    ScopedTimer timer(rep.profile(), "sweep");
    batch = runner.Map<CellOut>("faults_multi", cells, [](const TaskContext& ctx) {
      return RunCell(ctx);
    });
  }
  rep.CountWork(2 * cells * g_horizon * kSessions, cells);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!batch.ok()) {
    std::fprintf(stderr, "faults_multi: %s\n",
                 FormatErrors(batch.errors).c_str());
    return 1;
  }

  Table table({"loss/hop", "denial/hop", "algo", "max delay", "delay+",
               "util", "util-", "chg", "chg+", "losses", "denials",
               "timeouts", "retries", "fallbacks", "leftover"});
  bool all_conserved = true;
  bool all_capped = true;
  // Reduce grouped by (level, algo) in task-index order.
  for (std::size_t l = 0; l < kLevels.size(); ++l) {
    for (std::size_t a = 0; a < kAlgos.size(); ++a) {
      const std::int64_t per_algo =
          static_cast<std::int64_t>(kKinds.size() * kSeeds.size());
      Time worst_delay = 0;
      Time worst_erosion = 0;
      double min_util = 1.0;
      double worst_util_loss = 0;
      std::int64_t changes = 0;
      std::int64_t extra_changes = 0;
      Bits leftover = 0;
      FaultStats group;
      const std::int64_t first =
          static_cast<std::int64_t>(l) * per_level +
          static_cast<std::int64_t>(a) * per_algo;
      for (std::int64_t i = first; i < first + per_algo; ++i) {
        const CellOut& c = *batch.results[static_cast<std::size_t>(i)];
        worst_delay = std::max(worst_delay, c.fault_delay);
        worst_erosion = std::max(worst_erosion, c.fault_delay - c.base_delay);
        min_util = std::min(min_util, c.fault_util);
        worst_util_loss =
            std::max(worst_util_loss, c.base_util - c.fault_util);
        changes += c.fault_changes;
        extra_changes += c.fault_changes - c.base_changes;
        leftover += c.final_queue;
        group.Merge(c.faults);
        all_conserved = all_conserved && c.conserved;
        all_capped = all_capped && c.capped;
      }
      table.AddRow({Table::Num(kLevels[l].loss, 2),
                    Table::Num(kLevels[l].denial, 2), kAlgos[a],
                    Table::Num(worst_delay), Table::Num(worst_erosion),
                    Table::Num(min_util, 3), Table::Num(worst_util_loss, 3),
                    Table::Num(changes), Table::Num(extra_changes),
                    Table::Num(group.losses), Table::Num(group.denials),
                    Table::Num(group.timeouts), Table::Num(group.retries),
                    Table::Num(group.fallbacks), Table::Num(leftover)});
      const std::string label = "loss=" + Table::Num(kLevels[l].loss, 2) +
                                ",denial=" + Table::Num(kLevels[l].denial, 2) +
                                "," + kAlgos[a];
      rep.RowInfo(label, "max_delay", static_cast<double>(worst_delay));
      rep.RowInfo(label, "delay_erosion", static_cast<double>(worst_erosion));
      rep.RowInfo(label, "util_loss", worst_util_loss);
      rep.RowInfo(label, "leftover_bits", static_cast<double>(leftover));
    }
  }
  // The two hard invariants (per-session graceful degradation never loses
  // bits; committed totals stay within the stale-commit-sound cap) double
  // as the bench's machine-readable pass criteria.
  rep.RowMax("all", "unconserved_cells", all_conserved ? 0.0 : 1.0, 0.0);
  rep.RowMax("all", "cap_violations", all_capped ? 0.0 : 1.0, 0.0);

  std::printf("== FAULTS-MULTI: per-session control-plane degradation ==\n");
  std::printf("k=%lld B_O=%lld D_O=%lld hops=%lld; %zu kinds x %zu seeds, "
              "%lld slots; erosion vs the fault-free adapter on the same "
              "path\n\n",
              static_cast<long long>(kSessions),
              static_cast<long long>(kBoPerSession * kSessions),
              static_cast<long long>(kDo), static_cast<long long>(kHops),
              kKinds.size(), kSeeds.size(), static_cast<long long>(g_horizon));
  table.PrintAscii(std::cout);
  rep.Save("fault_degradation_multi", table);
  std::printf("\ninvariants: bits conserved %s, committed totals bounded "
              "%s\n",
              all_conserved ? "yes" : "NO", all_capped ? "yes" : "NO");
  std::printf(
      "Expected shape: delay and utilization erode smoothly with the fault "
      "rate\nfor all three algorithms (each session keeps serving at its "
      "last committed\nallocation); denial-heavy rows lean on per-session "
      "fallback drains to keep\n'leftover' at 0; no row loses bits.\n");
  std::fprintf(stderr, "[faults_multi] %lld cells, %d jobs, %.2fs wall\n",
               static_cast<long long>(cells), runner.jobs(), secs);
  return rep.Finish();
}
