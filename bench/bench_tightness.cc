// TIGHT — the paper's tightness claims (Section 1.1 / Section 2 closing
// remarks):
//   * under GLOBAL utilization, every online algorithm is
//     Omega(log B_A)-competitive, so the Fig. 3 algorithm's O(log B_A) is
//     tight — the ladder-pumping adaptive adversary forces the full ladder
//     in every stage;
//   * under LOCAL utilization, high(t)/low(t) = O(1/U_O) once a window
//     fits, so NO adversary can force more than O(log 1/U_O) changes per
//     stage — the same pump saturates at a short ladder, which is exactly
//     why the Theorem 7 variant exists.
//
// The adversary sends just above the online algorithm's current allocation
// (so no power-of-two level is skipped) and goes silent once the ladder
// saturates, collapsing the stage.
#include <algorithm>
#include <iostream>

#include "analysis/table.h"
#include "core/multi_phased.h"
#include "core/single_session.h"
#include "offline/offline_single.h"
#include "reporter.h"
#include "sim/adaptive.h"
#include "traffic/adversaries.h"
#include "util/power_of_two.h"

namespace {
using namespace bwalloc;

constexpr Time kDa = 16;  // D_O = 8
constexpr Time kW = 16;  // 2 D_O (offline feasibility, DESIGN.md)

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("tight", &argc, argv);
  Table table({"B_A", "l_A", "variant", "chg/stage", "online chg",
               "greedy chg", "ratio vs greedy"});

  struct Config {
    const char* name;
    SingleSessionOnline::Variant variant;
    SingleSessionOnline::UtilizationMode mode;
  };
  const Config configs[] = {
      {"base/global", SingleSessionOnline::Variant::kBase,
       SingleSessionOnline::UtilizationMode::kGlobal},
      {"base/local", SingleSessionOnline::Variant::kBase,
       SingleSessionOnline::UtilizationMode::kLocal},
      {"modified/local", SingleSessionOnline::Variant::kModified,
       SingleSessionOnline::UtilizationMode::kLocal},
  };

  const std::vector<Bits> bas =
      rep.quick() ? std::vector<Bits>{16, 64}
                  : std::vector<Bits>{16, 32, 64, 128, 256};
  // Plenty of slots for many pump/collapse cycles.
  const Time horizon = rep.quick() ? 2000 : 6000;
  {
  ScopedTimer timer(rep.profile(), "sweep");
  for (const Bits ba : bas) {
    for (const Config& config : configs) {
      const bool global =
          config.mode == SingleSessionOnline::UtilizationMode::kGlobal;
      SingleSessionParams p;
      p.max_bandwidth = ba;
      p.max_delay = kDa;
      p.min_utilization = Ratio(1, 6);
      p.window = kW;
      LadderPumpAdversary adversary(ba, kDa / 2);
      SingleSessionOnline online(p, config.variant, config.mode);
      SingleEngineOptions opt;
      opt.drain_slots = 2 * kDa;
      const AdaptiveRunResult r =
          RunAdaptiveSingleSession(adversary, online, horizon, opt);

      OfflineParams off;
      off.max_bandwidth = p.offline_bandwidth();
      off.delay = p.offline_delay();
      off.utilization = p.offline_utilization();
      off.window = p.window;
      off.global_utilization = global;
      const OfflineSchedule greedy = GreedyMinChangeSchedule(r.trace, off);
      const std::int64_t greedy_changes =
          greedy.feasible ? std::max<std::int64_t>(1, greedy.changes()) : -1;

      const double per_stage =
          static_cast<double>(r.run.changes) /
          static_cast<double>(std::max<std::int64_t>(1, r.run.stages));
      table.AddRow(
          {Table::Num(ba), Table::Num(CeilLog2(ba)),
           config.name, Table::Num(per_stage, 1),
           Table::Num(r.run.changes), Table::Num(greedy_changes),
           Table::Num(greedy_changes > 0
                          ? static_cast<double>(r.run.changes) /
                                static_cast<double>(greedy_changes)
                          : -1.0,
                      2)});
      const std::string label =
          "B_A=" + Table::Num(ba) + "," + config.name;
      if (config.variant == SingleSessionOnline::Variant::kModified) {
        // Theorem 7 tightness: even the pump cannot extract more than
        // log2(1/U_O) + O(1) from the modified variant, at any B_A.
        rep.RowMax(label, "chg_per_stage", per_stage,
                   static_cast<double>(CeilLog2(2) + 4));
      } else {
        rep.RowInfo(label, "chg_per_stage", per_stage);
      }
      rep.CountWork(horizon, 1);
    }
  }
  }

  std::printf("== TIGHT: where the log B_A ratio is achieved — and where "
              "it can't be ==\n");
  std::printf("ladder-pump adaptive adversary, D_A=%lld, U_A=1/6, W=%lld\n\n",
              static_cast<long long>(kDa), static_cast<long long>(kW));
  table.PrintAscii(std::cout);
  rep.Save("tightness_single", table);
  std::printf(
      "\nExpected shape: against the pump, BOTH base variants pay the "
      "full ladder —\n'chg/stage' grows with l_A = log2(B_A) (the lower "
      "bound is realized; under local\nwindows the ladder fits inside the "
      "first-W grace period where high(t) is still\nunbounded). Only the "
      "Theorem 7 modified variant, which holds B_A through that\ngrace "
      "period, stays flat — the adversary cannot extract more than "
      "O(log 1/U_O)\nfrom it at any B_A.\n");

  // ---- multi-session tightness: the share hunter vs the 3k budget -------
  Table multi({"k", "3k budget", "chg/stage", "stages", "max delay",
               "<= 2 D_O"});
  const std::vector<std::int64_t> multi_ks =
      rep.quick() ? std::vector<std::int64_t>{2, 4}
                  : std::vector<std::int64_t>{2, 4, 8, 16};
  const Time multi_horizon = rep.quick() ? 2000 : 8000;
  {
  ScopedTimer timer(rep.profile(), "sweep-multi");
  for (const std::int64_t k : multi_ks) {
    MultiSessionParams p;
    p.sessions = k;
    p.offline_bandwidth = 16 * k;
    p.offline_delay = 8;
    PhasedMulti sys(p);
    ShareHunterAdversary adversary(p.offline_bandwidth, p.offline_delay);
    MultiEngineOptions opt;
    opt.drain_slots = 32;
    const MultiAdaptiveRunResult r =
        RunAdaptiveMultiSession(adversary, sys, multi_horizon, opt);
    const double per_stage =
        static_cast<double>(r.run.local_changes) /
        static_cast<double>(std::max<std::int64_t>(1, r.run.stages + 1));
    multi.AddRow({Table::Num(k), Table::Num(3 * k),
                  Table::Num(per_stage, 1), Table::Num(r.run.stages),
                  Table::Num(r.run.delay.max_delay()),
                  Table::Num(2 * p.offline_delay)});
    const std::string label = "k=" + Table::Num(k) + ",hunter";
    rep.RowMax(label, "max_delay",
               static_cast<double>(r.run.delay.max_delay()),
               static_cast<double>(2 * p.offline_delay));
    rep.RowInfo(label, "chg_per_stage", per_stage);
    rep.CountWork(multi_horizon, 1);
  }
  }
  std::printf("\n== TIGHT (multi): share-hunter adversary vs the 3k "
              "budget ==\n\n");
  multi.PrintAscii(std::cout);
  rep.Save("tightness_multi", multi);
  std::printf(
      "\nExpected shape: the hunter always overloads the currently "
      "smallest share, so\n'chg/stage' scales linearly with k and sits "
      "near the 3k regime — Lemma 12's\nbudget is what an adversary can "
      "actually extract, while the delay bound holds.\n");
  return rep.Finish();
}
