// THM6 — Theorem 6 reproduction: the single-session online algorithm makes
// at most O(log B_A) times the changes of any offline algorithm with
// (B_O = B_A, D_O = D_A/2, U_O = 3 U_A), while honoring delay D_A and
// utilization U_A.
//
// Sweep B_A; for each setting run the workload suite and report
//   * measured changes per certified stage (the quantity Lemma 1 bounds by
//     l_A = log2 B_A),
//   * the ratio against the independent envelope stage lower bound and
//     against the constructive greedy offline,
//   * the worst delay and utilization across the suite.
// The paper's claim is the SHAPE: the per-stage price grows like log2(B_A)
// and never exceeds the bound; delay/utilization never break.
//
// The (B_A, seed, workload) grid runs sharded on the batch runner; pass
// --jobs=N (default: hardware concurrency). Results reduce in task-index
// order, so the table is identical for every N.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "core/single_session.h"
#include "offline/offline_single.h"
#include "reporter.h"
#include "runner/batch_runner.h"
#include "sim/engine_single.h"
#include "traffic/workload_suite.h"
#include "util/power_of_two.h"

namespace {
using namespace bwalloc;

constexpr Time kDa = 16;  // D_O = 8
constexpr Time kW = 16;  // 2 D_O (offline feasibility, DESIGN.md)
constexpr Time kHorizon = 6000;

const std::vector<Bits> kBas = {16, 64, 256, 1024, 4096};
const std::vector<std::uint64_t> kSeeds = {11, 12};
const std::vector<std::string> kWorkloads = {
    "cbr", "onoff", "pareto", "mmpp", "video", "sawtooth", "mixed"};

// One (B_A, seed, workload) cell of the sweep.
struct CellOut {
  double per_stage = 0;
  double ratio_lb = 0;
  double ratio_greedy = 0;
  Time delay = 0;
  double util = 1.0;
  bool has_traffic = false;
};

CellOut RunCell(Bits ba, std::uint64_t seed, const std::string& workload,
                Time horizon) {
  SingleSessionParams p;
  p.max_bandwidth = ba;
  p.max_delay = kDa;
  p.min_utilization = Ratio(1, 6);
  p.window = kW;

  OfflineParams off;
  off.max_bandwidth = p.offline_bandwidth();
  off.delay = p.offline_delay();
  off.utilization = p.offline_utilization();
  off.window = p.window;

  const auto trace = SingleSessionWorkload(
      workload, p.offline_bandwidth(), p.offline_delay(), horizon, seed);
  SingleSessionOnline alg(p);
  SingleEngineOptions opt;
  opt.drain_slots = 2 * kDa;
  opt.utilization_scan_window = kW + 5 * p.offline_delay();
  const SingleRunResult r = RunSingleSession(trace, alg, opt);

  CellOut out;
  out.per_stage = static_cast<double>(alg.max_changes_in_any_stage());
  const std::int64_t lb = EnvelopeStageLowerBound(trace, off);
  out.ratio_lb = static_cast<double>(r.changes) /
                 static_cast<double>(std::max<std::int64_t>(1, lb));
  const OfflineSchedule greedy = GreedyMinChangeSchedule(trace, off);
  if (greedy.feasible) {
    out.ratio_greedy =
        static_cast<double>(r.changes) /
        static_cast<double>(std::max<std::int64_t>(1, greedy.changes()));
  }
  out.delay = r.delay.max_delay();
  out.util = r.worst_best_window_utilization;
  out.has_traffic = r.total_arrivals > 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("thm6", &argc, argv);
  BatchRunner runner(BatchOptions{rep.jobs(), 0});

  const std::vector<Bits> bas =
      rep.quick() ? std::vector<Bits>{16, 64} : kBas;
  const Time horizon = rep.quick() ? 1500 : kHorizon;
  const std::int64_t per_ba =
      static_cast<std::int64_t>(kSeeds.size() * kWorkloads.size());
  const std::int64_t cells = static_cast<std::int64_t>(bas.size()) * per_ba;

  const auto start = std::chrono::steady_clock::now();
  BatchResult<CellOut> batch;
  {
    ScopedTimer timer(rep.profile(), "sweep");
    batch = runner.Map<CellOut>("thm6", cells, [&](const TaskContext& ctx) {
      const std::int64_t i = ctx.key.index;
      const Bits ba = bas[static_cast<std::size_t>(i / per_ba)];
      const std::uint64_t seed =
          kSeeds[static_cast<std::size_t>((i % per_ba) /
                                          static_cast<std::int64_t>(
                                              kWorkloads.size()))];
      const std::string& workload = kWorkloads[static_cast<std::size_t>(
          i % static_cast<std::int64_t>(kWorkloads.size()))];
      return RunCell(ba, seed, workload, horizon);
    });
  }
  rep.CountWork(cells * horizon, cells);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!batch.ok()) {
    std::fprintf(stderr, "thm6: %s\n", FormatErrors(batch.errors).c_str());
    return 1;
  }

  Table table({"B_A", "l_A bound", "chg/stage max", "ratio vs stage-lb",
               "ratio vs greedy", "max delay (<=16)", "min local util",
               "workloads"});
  // Reduce in task-index order: [ba_idx * per_ba, (ba_idx + 1) * per_ba).
  for (std::size_t b = 0; b < bas.size(); ++b) {
    double worst_per_stage = 0;
    double worst_ratio_lb = 0;
    double worst_ratio_greedy = 0;
    Time worst_delay = 0;
    double min_util = 1.0;
    int workloads = 0;
    for (std::int64_t i = static_cast<std::int64_t>(b) * per_ba;
         i < static_cast<std::int64_t>(b + 1) * per_ba; ++i) {
      const CellOut& c = *batch.results[static_cast<std::size_t>(i)];
      worst_per_stage = std::max(worst_per_stage, c.per_stage);
      worst_ratio_lb = std::max(worst_ratio_lb, c.ratio_lb);
      worst_ratio_greedy = std::max(worst_ratio_greedy, c.ratio_greedy);
      worst_delay = std::max(worst_delay, c.delay);
      if (c.has_traffic) min_util = std::min(min_util, c.util);
      ++workloads;
    }
    table.AddRow({Table::Num(bas[b]), Table::Num(CeilLog2(bas[b])),
                  Table::Num(worst_per_stage, 0),
                  Table::Num(worst_ratio_lb, 2),
                  Table::Num(worst_ratio_greedy, 2),
                  Table::Num(worst_delay), Table::Num(min_util, 3),
                  Table::Num(std::int64_t{workloads})});
    const std::string label = "B_A=" + Table::Num(bas[b]);
    rep.RowMax(label, "chg_per_stage_max", worst_per_stage,
               static_cast<double>(CeilLog2(bas[b]) + 3));
    rep.RowMax(label, "max_delay", static_cast<double>(worst_delay),
               static_cast<double>(kDa));
    rep.RowMin(label, "min_local_util", min_util, 1.0 / 6.0);
    rep.RowInfo(label, "ratio_vs_stage_lb", worst_ratio_lb);
    rep.RowInfo(label, "ratio_vs_greedy", worst_ratio_greedy);
  }

  std::printf("== THM6: single-session competitive ratio vs B_A ==\n");
  std::printf("D_A=%lld, U_A=1/6, W=%lld; worst case over the suite x 2 "
              "seeds, %lld slots each\n\n",
              static_cast<long long>(kDa), static_cast<long long>(kW),
              static_cast<long long>(kHorizon));
  table.PrintAscii(std::cout);
  rep.Save("thm6_ratios", table);
  std::printf(
      "\nExpected shape (Theorem 6): 'chg/stage max' never exceeds l_A + 3 "
      "(transition-\ncounting convention; bursts let the ladder skip "
      "levels, so it can sit below the\nbound); delay <= D_A = 16; local "
      "utilization >= U_A = 0.167 at every time.\n");
  std::fprintf(stderr, "[thm6] %lld cells, %d jobs, %.2fs wall\n",
               static_cast<long long>(cells), runner.jobs(), secs);
  return rep.Finish();
}
