// THM6 — Theorem 6 reproduction: the single-session online algorithm makes
// at most O(log B_A) times the changes of any offline algorithm with
// (B_O = B_A, D_O = D_A/2, U_O = 3 U_A), while honoring delay D_A and
// utilization U_A.
//
// Sweep B_A; for each setting run the workload suite and report
//   * measured changes per certified stage (the quantity Lemma 1 bounds by
//     l_A = log2 B_A),
//   * the ratio against the independent envelope stage lower bound and
//     against the constructive greedy offline,
//   * the worst delay and utilization across the suite.
// The paper's claim is the SHAPE: the per-stage price grows like log2(B_A)
// and never exceeds the bound; delay/utilization never break.
#include <algorithm>
#include <iostream>

#include "analysis/artifact.h"
#include "analysis/table.h"
#include "core/single_session.h"
#include "offline/offline_single.h"
#include "sim/engine_single.h"
#include "traffic/workload_suite.h"
#include "util/power_of_two.h"

namespace {
using namespace bwalloc;

constexpr Time kDa = 16;  // D_O = 8
constexpr Time kW = 16;  // 2 D_O (offline feasibility, DESIGN.md)
constexpr Time kHorizon = 6000;

}  // namespace

int main(int argc, char** argv) {
  const BenchArtifacts artifacts(argc, argv);
  Table table({"B_A", "l_A bound", "chg/stage max", "ratio vs stage-lb",
               "ratio vs greedy", "max delay (<=16)", "min local util",
               "workloads"});

  for (const Bits ba : {Bits{16}, Bits{64}, Bits{256}, Bits{1024},
                        Bits{4096}}) {
    SingleSessionParams p;
    p.max_bandwidth = ba;
    p.max_delay = kDa;
    p.min_utilization = Ratio(1, 6);
    p.window = kW;

    OfflineParams off;
    off.max_bandwidth = p.offline_bandwidth();
    off.delay = p.offline_delay();
    off.utilization = p.offline_utilization();
    off.window = p.window;

    double worst_per_stage = 0;
    double worst_ratio_lb = 0;
    double worst_ratio_greedy = 0;
    Time worst_delay = 0;
    double min_util = 1.0;
    int workloads = 0;

    for (const std::uint64_t seed : {11ULL, 12ULL}) {
      for (const NamedTrace& w :
           SingleSessionSuite(p.offline_bandwidth(), p.offline_delay(),
                              kHorizon, seed)) {
        SingleSessionOnline alg(p);
        SingleEngineOptions opt;
        opt.drain_slots = 2 * kDa;
        opt.utilization_scan_window = kW + 5 * p.offline_delay();
        const SingleRunResult r = RunSingleSession(w.trace, alg, opt);

        const auto stages = std::max<std::int64_t>(1, r.stages);
        worst_per_stage = std::max(
            worst_per_stage, static_cast<double>(alg.max_changes_in_any_stage()));
        const std::int64_t lb = EnvelopeStageLowerBound(w.trace, off);
        worst_ratio_lb = std::max(
            worst_ratio_lb, static_cast<double>(r.changes) /
                                static_cast<double>(std::max<std::int64_t>(
                                    1, lb)));
        const OfflineSchedule greedy = GreedyMinChangeSchedule(w.trace, off);
        if (greedy.feasible) {
          worst_ratio_greedy = std::max(
              worst_ratio_greedy,
              static_cast<double>(r.changes) /
                  static_cast<double>(
                      std::max<std::int64_t>(1, greedy.changes())));
        }
        worst_delay = std::max(worst_delay, r.delay.max_delay());
        if (r.total_arrivals > 0) {
          min_util = std::min(min_util, r.worst_best_window_utilization);
        }
        (void)stages;
        ++workloads;
      }
    }

    table.AddRow({Table::Num(ba), Table::Num(CeilLog2(ba)),
                  Table::Num(worst_per_stage, 0),
                  Table::Num(worst_ratio_lb, 2),
                  Table::Num(worst_ratio_greedy, 2),
                  Table::Num(worst_delay), Table::Num(min_util, 3),
                  Table::Num(std::int64_t{workloads})});
  }

  std::printf("== THM6: single-session competitive ratio vs B_A ==\n");
  std::printf("D_A=%lld, U_A=1/6, W=%lld; worst case over the suite x 2 "
              "seeds, %lld slots each\n\n",
              static_cast<long long>(kDa), static_cast<long long>(kW),
              static_cast<long long>(kHorizon));
  table.PrintAscii(std::cout);
  artifacts.Save("thm6_ratios", table);
  std::printf(
      "\nExpected shape (Theorem 6): 'chg/stage max' never exceeds l_A + 3 "
      "(transition-\ncounting convention; bursts let the ladder skip "
      "levels, so it can sit below the\nbound); delay <= D_A = 16; local "
      "utilization >= U_A = 0.167 at every time.\n");
  return 0;
}
