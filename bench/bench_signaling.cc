// SIG — renegotiation signalling ablation (extension; Section 1's
// motivation for counting changes: a change invokes software in every
// switch on the path and takes time to commit).
//
// Sweep the path length: each switch adds commit latency and per-change
// cost. Uncompensated, the Fig. 3 algorithm's delay bound erodes by up to
// 2x the commit latency; the latency-compensated parameters (tightened
// D_A) restore it at the price of more changes. The cost column prices
// each signalling round at the path's per-change cost.
#include <cstdio>
#include <iostream>
#include <memory>

#include "analysis/table.h"
#include "core/single_session.h"
#include "net/path.h"
#include "net/signaling.h"
#include "reporter.h"
#include "sim/engine_single.h"
#include "traffic/workload_suite.h"

namespace {
using namespace bwalloc;

constexpr Bits kBa = 256;
constexpr Time kDa = 32;  // D_O = 16
constexpr Time kHorizon = 12000;

SingleSessionParams Params() {
  SingleSessionParams p;
  p.max_bandwidth = kBa;
  p.max_delay = kDa;
  p.min_utilization = Ratio(1, 6);
  p.window = 16;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("sig", &argc, argv);
  const Time horizon = rep.quick() ? 3000 : kHorizon;
  const auto trace = SingleSessionWorkload("mixed", kBa, kDa / 2, horizon,
                                           777);
  SingleEngineOptions opt;
  opt.drain_slots = 4 * kDa;

  Table table({"path hops", "commit latency", "variant", "max delay",
               "D_A", "changes", "signal rounds", "signal cost"});

  {
  ScopedTimer timer(rep.profile(), "sweep");
  for (const std::int64_t hops : {0, 2, 4, 8}) {
    const NetworkPath path = NetworkPath::Uniform(hops, 1, 25.0);
    for (const bool compensated : {false, true}) {
      if (compensated && hops == 0) continue;
      SingleSessionParams p = Params();
      if (compensated) {
        p = MakeLatencyCompensatedParams(p, path.SignalingLatency());
      }
      SignalingAdapter adapter(std::make_unique<SingleSessionOnline>(p),
                               path);
      const SingleRunResult r = RunSingleSession(trace, adapter, opt);
      table.AddRow(
          {Table::Num(hops), Table::Num(path.SignalingLatency()),
           compensated ? "compensated" : "naive",
           Table::Num(r.delay.max_delay()), Table::Num(kDa),
           Table::Num(r.changes), Table::Num(adapter.signaling_rounds()),
           Table::Num(static_cast<double>(adapter.signaling_rounds()) *
                          path.ChangeCost(),
                      0)});
      const std::string label =
          "hops=" + Table::Num(hops) + "," +
          (compensated ? "compensated" : "naive");
      if (compensated || hops == 0) {
        // Compensated (and zero-latency) paths must still meet D_A.
        rep.RowMax(label, "max_delay",
                   static_cast<double>(r.delay.max_delay()),
                   static_cast<double>(kDa));
      } else {
        rep.RowInfo(label, "max_delay",
                    static_cast<double>(r.delay.max_delay()));
      }
      rep.RowInfo(label, "changes", static_cast<double>(r.changes));
      rep.CountWork(horizon, 1);
    }
  }
  }

  std::printf("== SIG: renegotiation latency on a multi-switch path ==\n");
  std::printf("workload 'mixed', B_A=%lld, D_A=%lld, U_A=1/6; 1 slot + 25 "
              "cost units per switch\n\n",
              static_cast<long long>(kBa), static_cast<long long>(kDa));
  table.PrintAscii(std::cout);
  rep.Save("signaling", table);
  std::printf(
      "\nExpected shape: the naive rows drift past D_A as the path grows; "
      "the\ncompensated rows stay within D_A by tightening the internal "
      "deadline to\nD_A - 2S, paying a modest change-count premium — the "
      "practical answer to the\npaper's 'changes take time' observation.\n");
  return rep.Finish();
}
