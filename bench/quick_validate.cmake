# CI smoke for one bench binary: run it in --quick mode into a scratch
# directory, require exit 0 (all paper bounds hold on the shrunk grid),
# and require its BENCH_<name>.json to pass the bench_diff schema check.
#
#   cmake -DEXE=path/to/bench_x -DDIFF=path/to/bench_diff
#         -DOUT_DIR=work/dir -P quick_validate.cmake
if(NOT DEFINED EXE OR NOT DEFINED DIFF OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR "quick_validate.cmake: EXE, DIFF, OUT_DIR required")
endif()
file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

execute_process(
  COMMAND "${EXE}" "${OUT_DIR}" --quick
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR "bench --quick failed (${exit_code})\n${out}\n${err}")
endif()

file(GLOB bench_json "${OUT_DIR}/BENCH_*.json")
if(bench_json STREQUAL "")
  message(FATAL_ERROR "bench wrote no BENCH_*.json into ${OUT_DIR}")
endif()

execute_process(
  COMMAND "${DIFF}" --validate "${OUT_DIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
    "bench_diff --validate failed (${exit_code})\n${out}\n${err}")
endif()
