// THM14 — Theorem 14 reproduction: the phased multi-session algorithm is a
// (4 B_O, 2 D_O)-algorithm whose change count is at most 3k times any
// offline (B_O, D_O)-algorithm's.
//
// Sweep k on the rotating-hotspot workload (the regime where a static
// offline split fails, Lemma 13) and report the online's per-stage change
// count against the 3k budget, the ratio against the constructive greedy
// offline, and the resource/delay guarantees. The per-k cells run sharded
// on the batch runner (--jobs=N); rows emit in k order for every N.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "core/multi_phased.h"
#include "offline/offline_multi.h"
#include "reporter.h"
#include "runner/batch_runner.h"
#include "sim/engine_multi.h"
#include "traffic/workload_suite.h"

namespace {
using namespace bwalloc;

constexpr Time kDo = 8;
constexpr Time kHorizon = 8000;

const std::vector<std::int64_t> kSessionCounts = {2, 4, 8, 16, 32};

struct CellOut {
  MultiRunResult run;
  std::int64_t off_changes = -1;
};

CellOut RunCell(std::int64_t k, Time horizon) {
  const Bits bo = 16 * k;  // constant per-session share across the sweep
  const auto traces = MultiSessionWorkload(
      MultiWorkloadKind::kRotatingHotspot, k, bo, kDo, horizon,
      static_cast<std::uint64_t>(100 + k));

  MultiSessionParams p;
  p.sessions = k;
  p.offline_bandwidth = bo;
  p.offline_delay = kDo;
  PhasedMulti sys(p);
  MultiEngineOptions opt;
  opt.drain_slots = 4 * kDo;

  CellOut out;
  out.run = RunMultiSession(traces, sys, opt);
  const MultiOfflineSchedule offline = GreedyMultiSchedule(traces, bo, kDo);
  out.off_changes =
      offline.feasible ? std::max<std::int64_t>(1, offline.local_changes())
                       : -1;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("thm14", &argc, argv);
  const Time horizon = rep.quick() ? 2000 : kHorizon;
  const std::vector<std::int64_t> ks =
      rep.quick() ? std::vector<std::int64_t>{2, 4, 8} : kSessionCounts;

  BatchRunner runner(BatchOptions{rep.jobs(), 0});
  const auto start = std::chrono::steady_clock::now();
  BatchResult<CellOut> batch;
  {
    ScopedTimer timer(rep.profile(), "sweep");
    batch = runner.Map<CellOut>(
        "thm14", static_cast<std::int64_t>(ks.size()),
        [&](const TaskContext& ctx) {
          return RunCell(ks[static_cast<std::size_t>(ctx.key.index)], horizon);
        });
  }
  rep.CountWork(static_cast<std::int64_t>(ks.size()) * horizon,
                static_cast<std::int64_t>(ks.size()));
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!batch.ok()) {
    std::fprintf(stderr, "thm14: %s\n", FormatErrors(batch.errors).c_str());
    return 1;
  }

  Table table({"k", "3k budget", "chg/stage", "online chg", "offline chg",
               "ratio", "max delay (<=16)", "peak reg/B_O", "peak ovf/B_O"});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    const std::int64_t k = ks[i];
    const Bits bo = 16 * k;
    const CellOut& c = *batch.results[i];
    const MultiRunResult& r = c.run;
    const double per_stage =
        static_cast<double>(r.local_changes) /
        static_cast<double>(std::max<std::int64_t>(1, r.stages + 1));
    const double ratio =
        c.off_changes > 0
            ? static_cast<double>(r.local_changes) /
                  static_cast<double>(c.off_changes)
            : -1.0;
    const double reg_over_bo =
        r.peak_regular_allocation.ToDouble() / static_cast<double>(bo);
    const double ovf_over_bo =
        r.peak_overflow_allocation.ToDouble() / static_cast<double>(bo);
    table.AddRow({Table::Num(k), Table::Num(3 * k),
                  Table::Num(per_stage, 1), Table::Num(r.local_changes),
                  Table::Num(c.off_changes), Table::Num(ratio, 2),
                  Table::Num(r.delay.max_delay()),
                  Table::Num(reg_over_bo, 2), Table::Num(ovf_over_bo, 2)});
    const std::string label = "k=" + Table::Num(k);
    // ~4k: our per-variable counting of the paper's 3k per-stage events.
    rep.RowMax(label, "chg_per_stage", per_stage,
               static_cast<double>(4 * k));
    rep.RowMax(label, "max_delay",
               static_cast<double>(r.delay.max_delay()),
               static_cast<double>(2 * kDo));
    // Lemma 10: regular <= 2 B_O (+ a k/B_O rounding transient), overflow
    // <= 2 B_O.
    rep.RowMax(label, "peak_reg_over_bo", reg_over_bo,
               2.0 + static_cast<double>(k) / static_cast<double>(bo));
    rep.RowMax(label, "peak_ovf_over_bo", ovf_over_bo, 2.0);
    rep.RowInfo(label, "ratio_vs_offline", ratio);
  }

  std::printf("== THM14: phased multi-session, changes vs 3k ==\n");
  std::printf("rotating-hotspot workload, B_O = 16k, D_O=%lld, %lld slots\n\n",
              static_cast<long long>(kDo),
              static_cast<long long>(horizon));
  table.PrintAscii(std::cout);
  rep.Save("thm14_phased", table);
  std::printf(
      "\nExpected shape (Theorem 14): 'chg/stage' scales linearly with k "
      "and stays\nunder ~4k (our per-variable counting of the paper's 3k "
      "events); delay <= 2 D_O = 16;\npeak regular <= 2 B_O (+k/B_O "
      "transient), peak overflow <= 2 B_O (Lemma 10).\n");
  std::fprintf(stderr, "[thm14] %zu cells, %d jobs, %.2fs wall\n",
               ks.size(), runner.jobs(), secs);
  return rep.Finish();
}
