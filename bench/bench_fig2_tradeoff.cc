// FIG2 — Figure 2 reproduction: the latency / utilization / #changes
// tradeoff, measured.
//
//   (a) static high allocation  — short delay, poor utilization, 0 changes
//   (b) static low (mean) rate  — great utilization, terrible delay
//   (c) per-arrival dynamic     — short delay AND good utilization, but an
//                                 unrealistic number of changes
//   (d) this paper's online     — short delay, good utilization, FEW changes
//
// plus the two heuristic families from the experimental prior work the
// paper cites (periodic renegotiation [GKT95]; EWMA+hysteresis [ACHM96])
// and the clairvoyant greedy offline for reference.
//
// The strategies share one trace and run sharded on the batch runner
// (--jobs=N); rows emit in strategy order, so output is independent of N.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>

#include "analysis/cost_model.h"
#include "analysis/table.h"
#include "baseline/exp_smoothing.h"
#include "baseline/per_arrival.h"
#include "baseline/periodic.h"
#include "baseline/static_alloc.h"
#include "core/single_session.h"
#include "offline/offline_single.h"
#include "reporter.h"
#include "runner/batch_runner.h"
#include "sim/engine_single.h"
#include "traffic/workload_suite.h"

namespace {

using namespace bwalloc;

constexpr Bits kBa = 1024;
constexpr Time kDa = 64;  // D_O = 32
constexpr Time kW = 64;  // 2 D_O (offline feasibility, DESIGN.md)
constexpr Time kHorizon = 20000;
constexpr std::uint64_t kSeed = 2;
constexpr std::int64_t kStrategies = 7;  // (a)..(d), periodic, ewma, offline

// One strategy's table row plus the raw numbers the Reporter needs.
struct StratOut {
  std::vector<std::string> row;
  std::string name;
  double max_delay = 0;
  double local_util = 1.0;
  double changes = 0;
  bool bounded = false;  // true only for the paper's online algorithm
};

StratOut MakeRow(const std::string& name, const SingleRunResult& r,
                 const CostModel& cost) {
  StratOut out;
  out.row = {name, Table::Num(r.delay.max_delay()),
             Table::Num(r.delay.Percentile(0.99)),
             Table::Num(r.global_utilization, 3),
             Table::Num(r.worst_best_window_utilization, 3),
             Table::Num(r.changes),
             Table::Num(cost.Cost(r) / 1000.0, 1)};
  out.name = name;
  out.max_delay = static_cast<double>(r.delay.max_delay());
  out.local_util = r.worst_best_window_utilization;
  out.changes = static_cast<double>(r.changes);
  return out;
}

StratOut RunStrategy(std::int64_t which, const std::vector<Bits>& trace) {
  SingleEngineOptions opt;
  opt.drain_slots = 4 * kDa;
  opt.utilization_scan_window = kW + 5 * (kDa / 2);
  // Price: 1 per bit-slot of reservation, 2000 per renegotiation (a change
  // invokes software in every switch on the path — Section 1).
  const CostModel cost{1.0, 2000.0};

  switch (which) {
    case 0: {  // (a) static high: minimal rate meeting the delay bound
      StaticAllocator alloc = MakeStaticPeak(trace, kDa);
      return MakeRow("(a) static-peak", RunSingleSession(trace, alloc, opt),
                     cost);
    }
    case 1: {  // (b) static low: mean rate
      StaticAllocator alloc = MakeStaticMean(trace);
      SingleEngineOptions long_drain = opt;
      long_drain.drain_slots = 2000;  // enough to drain its huge backlog
      return MakeRow("(b) static-mean",
                     RunSingleSession(trace, alloc, long_drain), cost);
    }
    case 2: {  // (c) per-arrival dynamic
      PerArrivalAllocator alloc(kDa);
      return MakeRow("(c) per-arrival", RunSingleSession(trace, alloc, opt),
                     cost);
    }
    case 3: {  // (d) the paper's online algorithm
      SingleSessionParams p;
      p.max_bandwidth = kBa;
      p.max_delay = kDa;
      p.min_utilization = Ratio(1, 6);
      p.window = kW;
      SingleSessionOnline alloc(p);
      StratOut out = MakeRow("(d) online (Fig.3)",
                             RunSingleSession(trace, alloc, opt), cost);
      out.bounded = true;
      return out;
    }
    case 4: {  // [GKT95]-style periodic renegotiation
      PeriodicAllocator alloc(4 * kDa, 130, kDa);
      return MakeRow("periodic (RCBR-ish)",
                     RunSingleSession(trace, alloc, opt), cost);
    }
    case 5: {  // [ACHM96]-style EWMA with hysteresis
      ExpSmoothingAllocator alloc(10, 50, kDa);
      return MakeRow("ewma+hysteresis", RunSingleSession(trace, alloc, opt),
                     cost);
    }
    default: {  // clairvoyant reference
      OfflineParams off;
      off.max_bandwidth = kBa;
      off.delay = kDa / 2;
      off.utilization = Ratio(1, 2);
      off.window = kW;
      const OfflineSchedule s = GreedyMinChangeSchedule(trace, off);
      if (!s.feasible) return {};
      const ScheduleCheck check = ValidateSchedule(trace, s);
      StratOut out;
      out.row = {"offline greedy", Table::Num(check.max_delay), "-",
                 Table::Num(check.global_utilization, 3), "-",
                 Table::Num(s.changes()), "-"};
      out.name = "offline greedy";
      out.max_delay = static_cast<double>(check.max_delay);
      out.changes = static_cast<double>(s.changes());
      return out;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("fig2", &argc, argv);
  const Time horizon = rep.quick() ? 4000 : kHorizon;
  const auto trace = SingleSessionWorkload("mixed", kBa, kDa / 2, horizon,
                                           kSeed);

  BatchRunner runner(BatchOptions{rep.jobs(), 0});
  const auto start = std::chrono::steady_clock::now();
  BatchResult<StratOut> batch;
  {
    ScopedTimer timer(rep.profile(), "sweep");
    batch = runner.Map<StratOut>(
        "fig2", kStrategies, [&trace](const TaskContext& ctx) {
          return RunStrategy(ctx.key.index, trace);
        });
  }
  rep.CountWork(kStrategies * horizon, kStrategies);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!batch.ok()) {
    std::fprintf(stderr, "fig2: %s\n", FormatErrors(batch.errors).c_str());
    return 1;
  }

  Table table({"strategy", "max delay", "p99 delay", "global util",
               "local util", "changes", "cost (k)"});
  for (const auto& out : batch.results) {
    if (out->row.empty()) continue;  // infeasible offline reference
    table.AddRow(out->row);
    if (out->bounded) {
      // Only the paper's algorithm carries guarantees (Theorem 6).
      rep.RowMax(out->name, "max_delay", out->max_delay,
                 static_cast<double>(kDa));
      rep.RowMin(out->name, "min_local_util", out->local_util, 1.0 / 6.0);
      rep.RowInfo(out->name, "changes", out->changes);
    } else {
      rep.RowInfo(out->name, "max_delay", out->max_delay);
      rep.RowInfo(out->name, "changes", out->changes);
    }
  }

  std::printf("== FIG2: the three-way tradeoff, measured ==\n");
  std::printf("workload 'mixed' (cbr + onoff + pareto), B_A=%lld, D_A=%lld, "
              "U_A=1/6, W=%lld, %lld slots\n\n",
              static_cast<long long>(kBa), static_cast<long long>(kDa),
              static_cast<long long>(kW), static_cast<long long>(horizon));
  table.PrintAscii(std::cout);
  rep.Save("fig2_tradeoff", table);
  std::printf(
      "\nExpected shape (paper Fig. 2): (a) short delay / poor utilization;"
      "\n(b) the reverse; (c) fixes both at an absurd change count;"
      "\n(d) fixes both at a change count near the clairvoyant offline.\n");
  std::fprintf(stderr, "[fig2] %lld strategies, %d jobs, %.2fs wall\n",
               static_cast<long long>(kStrategies), runner.jobs(), secs);
  return rep.Finish();
}
