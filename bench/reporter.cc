#include "reporter.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "runner/batch_runner.h"
#include "runner/thread_pool.h"
#include "util/json_writer.h"
#include "util/parse_num.h"

namespace bwalloc::bench {

Reporter::Reporter(std::string name, int* argc, char** argv)
    : name_(std::move(name)) {
  try {
    jobs_ = StripJobsFlag(argc, argv, ThreadPool::kAutoThreads);
  } catch (const UsageError& e) {
    // Usage-error contract shared with bwsim: exit 2, message names the
    // flag. Benches have no try/catch around main, so the escape hatch
    // lives here rather than in 18 bench mains.
    std::fprintf(stderr, "bench_%s: %s\n", name_.c_str(), e.what());
    std::exit(2);
  }
  int w = 1;
  for (int r = 1; r < *argc; ++r) {
    if (std::string(argv[r]) == "--quick") {
      quick_ = true;
      continue;
    }
    argv[w++] = argv[r];
  }
  *argc = w;
  if (*argc > 1) dir_ = argv[1];
}

void Reporter::Save(const std::string& table_name, const Table& table) const {
  if (dir_.empty()) return;
  const std::string path = dir_ + "/" + table_name + ".csv";
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write artifact: " + path);
  table.PrintCsv(out);
  if (!out) throw std::runtime_error("short artifact write: " + path);
}

void Reporter::RowMax(const std::string& label, const std::string& metric,
                      double measured, double bound) {
  rows_.push_back({label, metric, "max", measured, bound, measured <= bound});
}

void Reporter::RowMin(const std::string& label, const std::string& metric,
                      double measured, double bound) {
  rows_.push_back({label, metric, "min", measured, bound, measured >= bound});
}

void Reporter::RowInfo(const std::string& label, const std::string& metric,
                       double measured) {
  rows_.push_back({label, metric, "info", measured, std::nullopt, true});
}

void Reporter::CountWork(std::int64_t slots, std::int64_t cells) {
  slots_ += slots;
  cells_ += cells;
}

bool Reporter::pass() const {
  for (const Row& r : rows_) {
    if (!r.pass) return false;
  }
  return true;
}

std::string Reporter::ToJson() const {
  std::int64_t wall_ns = 0;
  for (const auto& [phase, entry] : profile_.phases()) wall_ns += entry.ns;
  const double secs = static_cast<double>(wall_ns) / 1e9;

  JsonWriter w;
  w.BeginObject();
  w.Key("bench");
  w.Value(name_);
  w.Key("quick");
  w.Value(quick_);
  w.Key("jobs");
  w.Value(jobs_);
  w.Key("rows");
  w.BeginArray();
  for (const Row& r : rows_) {
    w.BeginObject();
    w.Key("label");
    w.Value(r.label);
    w.Key("metric");
    w.Value(r.metric);
    w.Key("measured");
    w.Value(r.measured);
    w.Key("bound");
    if (r.bound.has_value()) {
      w.Value(*r.bound);
    } else {
      w.Null();
    }
    w.Key("kind");
    w.Value(r.kind);
    w.Key("pass");
    w.Value(r.pass);
    w.EndObject();
  }
  w.EndArray();
  w.Key("pass");
  w.Value(pass());
  w.Key("throughput");
  w.BeginObject();
  w.Key("slots");
  w.Value(slots_);
  w.Key("cells");
  w.Value(cells_);
  w.Key("wall_ns");
  w.Value(wall_ns);
  w.Key("slots_per_sec");
  w.Value(secs > 0 ? static_cast<double>(slots_) / secs : 0.0);
  w.Key("cells_per_sec");
  w.Value(secs > 0 ? static_cast<double>(cells_) / secs : 0.0);
  w.Key("ns_per_slot");
  w.Value(slots_ > 0 ? static_cast<double>(wall_ns) /
                           static_cast<double>(slots_)
                     : 0.0);
  w.EndObject();
  w.EndObject();
  return w.str();
}

int Reporter::Finish() const {
  const std::string path = (dir_.empty() ? std::string() : dir_ + "/") +
                           "BENCH_" + name_ + ".json";
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write bench json: " + path);
  out << ToJson() << "\n";
  if (!out) throw std::runtime_error("short bench json write: " + path);
  return pass() ? 0 : 1;
}

}  // namespace bwalloc::bench
