// SEC4 — Section 4 reproduction: the combined algorithm (k sessions,
// shared dynamic total bandwidth, per-session delay + aggregate
// utilization).
//
// Sweep (k, B_O) and report the two change families the section bounds:
//   * global changes (transitions of the reserved total 4 B_on + 2 B_O)
//     per global stage — bounded by the B_on ladder length log2(2 B_O) + 1;
//   * local (per-session) changes per local stage — the O(k) regime.
// Plus the guarantees: delay and aggregate utilization.
#include <algorithm>
#include <iostream>

#include "analysis/table.h"
#include "core/combined.h"
#include "reporter.h"
#include "sim/engine_multi.h"
#include "traffic/workload_suite.h"
#include "util/power_of_two.h"

namespace {
using namespace bwalloc;

constexpr Time kDo = 8;
constexpr Time kHorizon = 8000;

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("sec4", &argc, argv);
  const Time horizon = rep.quick() ? 2000 : kHorizon;
  const std::vector<std::int64_t> ks =
      rep.quick() ? std::vector<std::int64_t>{2, 4}
                  : std::vector<std::int64_t>{2, 4, 8, 16};
  const std::vector<Bits> bos = rep.quick()
                                    ? std::vector<Bits>{64}
                                    : std::vector<Bits>{64, 256};
  Table table({"k", "B_O", "inner", "glob chg/stage", "ladder bound",
               "loc chg/stage", "O(k) scale", "max delay", "3 D_O",
               "global util", "local util"});

  {
  ScopedTimer timer(rep.profile(), "sweep");
  for (const std::int64_t k : ks) {
    for (const Bits bo : bos) {
      for (const bool continuous : {false, true}) {
      CombinedParams p;
      p.sessions = k;
      p.offline_bandwidth = bo;
      p.offline_delay = kDo;
      p.offline_utilization = Ratio(1, 2);
      p.window = 8;
      p.continuous_inner = continuous;

      const auto traces = MultiSessionWorkload(
          MultiWorkloadKind::kRotatingHotspot, k, bo, kDo, horizon,
          static_cast<std::uint64_t>(300 + k) ^
              static_cast<std::uint64_t>(bo));
      CombinedOnline sys(p);
      MultiEngineOptions opt;
      opt.drain_slots = 8 * kDo;
      opt.utilization_scan_window = p.window + 5 * kDo;
      const MultiRunResult r = RunMultiSession(traces, sys, opt);
      rep.CountWork(horizon, 1);

      const double glob_per_stage =
          static_cast<double>(r.global_changes) /
          static_cast<double>(std::max<std::int64_t>(1, r.global_stages + 1));
      const double loc_per_stage =
          static_cast<double>(r.local_changes) /
          static_cast<double>(std::max<std::int64_t>(1, r.stages + 1));

      table.AddRow({Table::Num(k), Table::Num(bo),
                    continuous ? "continuous" : "phased",
                    Table::Num(glob_per_stage, 1),
                    Table::Num(CeilLog2(2 * bo) + 1),
                    Table::Num(loc_per_stage, 1),
                    Table::Num(loc_per_stage / static_cast<double>(k), 2),
                    Table::Num(r.delay.max_delay()), Table::Num(3 * kDo),
                    Table::Num(r.global_utilization, 3),
                    Table::Num(r.worst_best_window_utilization, 3)});
      const std::string label = "k=" + Table::Num(k) +
                                ",B_O=" + Table::Num(bo) + "," +
                                (continuous ? "continuous" : "phased");
      rep.RowMax(label, "glob_chg_per_stage", glob_per_stage,
                 static_cast<double>(CeilLog2(2 * bo) + 1));
      rep.RowMax(label, "max_delay",
                 static_cast<double>(r.delay.max_delay()),
                 static_cast<double>(3 * kDo));
      rep.RowInfo(label, "loc_chg_per_stage_over_k",
                  loc_per_stage / static_cast<double>(k));
      rep.RowInfo(label, "global_util", r.global_utilization);
      }
    }
  }
  }

  std::printf("== SEC4: combined algorithm — global x local stages ==\n");
  std::printf("rotating-hotspot workload, D_O=%lld, U_O=1/2, W=8, %lld "
              "slots\n\n",
              static_cast<long long>(kDo),
              static_cast<long long>(horizon));
  table.PrintAscii(std::cout);
  rep.Save("sec4_combined", table);
  std::printf(
      "\nExpected shape (Section 4): global changes per global stage within "
      "the B_on\nladder bound (log2(2 B_O) + 1, growing with B_O, flat in "
      "k); local changes per\nlocal stage in the O(k) regime ('O(k) scale' "
      "roughly constant down the k column);\ndelay within our slotted 3 D_O "
      "bound (the paper's sketch claims 2 D_O; see DESIGN.md).\n");
  return rep.Finish();
}
