// BUF — buffer sizing and data loss (extension; the paper's "fourth
// parameter"). Claim 2 bounds the online algorithm's queue by B_on * D_A,
// so a buffer of B_A * D_A bits provably loses nothing. Sweep the buffer
// size and measure the loss rate of each allocation policy: the online
// algorithm's loss hits zero exactly at its Claim 2 knee, while slower
// policies keep losing far beyond it.
#include <algorithm>
#include <iostream>
#include <memory>

#include "analysis/table.h"
#include "baseline/exp_smoothing.h"
#include "baseline/per_arrival.h"
#include "baseline/static_alloc.h"
#include "core/single_session.h"
#include "reporter.h"
#include "sim/engine_single.h"
#include "traffic/workload_suite.h"

namespace {
using namespace bwalloc;

constexpr Bits kBa = 64;
constexpr Time kDa = 16;
constexpr Time kHorizon = 12000;

double LossPct(const SingleRunResult& r) {
  return r.total_arrivals == 0
             ? 0.0
             : 100.0 * static_cast<double>(r.dropped) /
                   static_cast<double>(r.total_arrivals);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("buf", &argc, argv);
  const Time horizon = rep.quick() ? 3000 : kHorizon;
  const auto trace = SingleSessionWorkload("pareto", kBa, kDa / 2, horizon,
                                           888);
  const Bits claim2 = kBa * kDa;  // 1024 bits

  Table table({"buffer (bits)", "vs Claim2", "online loss %",
               "online peak q", "ewma loss %", "static-mean loss %"});

  {
  ScopedTimer timer(rep.profile(), "sweep");
  for (const Bits buffer : {claim2 / 8, claim2 / 4, claim2 / 2, claim2,
                            2 * claim2}) {
    SingleEngineOptions opt;
    opt.drain_slots = 4 * kDa;
    opt.buffer_capacity = buffer;

    SingleSessionParams p;
    p.max_bandwidth = kBa;
    p.max_delay = kDa;
    p.min_utilization = Ratio(1, 6);
    p.window = 8;
    SingleSessionOnline online(p);
    const SingleRunResult ro = RunSingleSession(trace, online, opt);

    ExpSmoothingAllocator ewma(10, 50, kDa);
    const SingleRunResult re = RunSingleSession(trace, ewma, opt);

    StaticAllocator mean_alloc = MakeStaticMean(trace);
    SingleEngineOptions long_opt = opt;
    long_opt.drain_slots = horizon;
    const SingleRunResult rs = RunSingleSession(trace, mean_alloc, long_opt);

    table.AddRow({Table::Num(buffer),
                  Table::Num(static_cast<double>(buffer) /
                                 static_cast<double>(claim2),
                             2),
                  Table::Num(LossPct(ro), 3), Table::Num(ro.peak_queue),
                  Table::Num(LossPct(re), 3), Table::Num(LossPct(rs), 3)});
    const std::string label = "buffer=" + Table::Num(buffer);
    // Claim 2: the online queue never exceeds B_A * D_A, so a buffer that
    // large (or larger) loses nothing.
    rep.RowMax(label, "online_peak_queue",
               static_cast<double>(ro.peak_queue),
               static_cast<double>(claim2));
    if (buffer >= claim2) {
      rep.RowMax(label, "online_loss_pct", LossPct(ro), 0.0);
    } else {
      rep.RowInfo(label, "online_loss_pct", LossPct(ro));
    }
    rep.RowInfo(label, "ewma_loss_pct", LossPct(re));
    rep.RowInfo(label, "static_mean_loss_pct", LossPct(rs));
    rep.CountWork(3 * horizon, 3);
  }
  }

  std::printf("== BUF: loss vs buffer size (Claim 2 sizing rule) ==\n");
  std::printf("pareto workload, B_A=%lld, D_A=%lld; Claim 2 buffer = B_A * "
              "D_A = %lld bits\n\n",
              static_cast<long long>(kBa), static_cast<long long>(kDa),
              static_cast<long long>(claim2));
  table.PrintAscii(std::cout);
  rep.Save("buffers", table);
  std::printf(
      "\nExpected shape: the online column reaches 0%% loss at (or before) "
      "the Claim 2\nbuffer and its peak queue never exceeds it; reactive "
      "heuristics still lose there,\nand the static mean-rate reservation "
      "loses at every realistic buffer — queue\nbounds are an algorithmic "
      "property, not a provisioning constant.\n");
  return rep.Finish();
}
