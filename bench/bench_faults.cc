// FAULTS — unreliable control plane degradation sweep (extension; the
// paper's Section 1 premise is that renegotiation invokes software in
// every switch on the path — software that can drop the request, deny the
// admission, or answer late).
//
// Sweep (per-hop loss rate, per-hop denial rate) x path length. Every cell
// runs the Fig. 3 algorithm twice over the same trace behind the same
// path: once through a fault-free RobustSignalingAdapter (the Theorem 6
// baseline at that latency) and once through a fault-injected one. The
// table reports the measured erosion — extra delay, lost utilization,
// extra changes — next to the degraded-mode counters (losses, denials,
// timeouts, retries, fallback drains).
//
// The (faults x hops x workload x seed) grid runs sharded on the batch
// runner; pass --jobs=N (default: hardware concurrency). Results reduce
// in task-index order, so stdout is byte-identical for every N.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>

#include "analysis/table.h"
#include "core/single_session.h"
#include "net/faults.h"
#include "reporter.h"
#include "runner/batch_runner.h"
#include "sim/engine_single.h"
#include "traffic/workload_suite.h"

namespace {
using namespace bwalloc;

constexpr Bits kBa = 64;
constexpr Time kDa = 16;  // D_O = 8
constexpr Time kW = 16;
constexpr Time kHorizon = 6000;
// Shortened by --quick before the sweep starts; read-only afterwards.
Time g_horizon = kHorizon;

struct FaultLevel {
  double loss;
  double denial;
  Time jitter;
};

const std::vector<FaultLevel> kLevels = {
    {0.00, 0.00, 0}, {0.10, 0.00, 2}, {0.25, 0.00, 2}, {0.00, 0.10, 2},
    {0.00, 0.25, 2}, {0.10, 0.10, 2}, {0.25, 0.25, 2},
};
const std::vector<std::int64_t> kHops = {2, 6};
const std::vector<std::string> kWorkloads = {"onoff", "mixed"};
const std::vector<std::uint64_t> kSeeds = {21, 22};

struct CellOut {
  Time base_delay = 0;
  Time fault_delay = 0;
  double base_util = 0;
  double fault_util = 0;
  std::int64_t base_changes = 0;
  std::int64_t fault_changes = 0;
  Bits final_queue = 0;
  bool conserved = false;
  bool capped = false;
  FaultStats faults;
};

SingleRunResult RunOne(const std::vector<Bits>& trace, std::int64_t hops,
                       const FaultPlan& plan, FaultStats* stats) {
  SingleSessionParams p;
  p.max_bandwidth = kBa;
  p.max_delay = kDa;
  p.min_utilization = Ratio(1, 6);
  p.window = kW;
  RobustOptions ropts;
  ropts.fallback_bandwidth = kBa;
  RobustSignalingAdapter adapter(std::make_unique<SingleSessionOnline>(p),
                                 NetworkPath::Uniform(hops, 1, 1.0), plan,
                                 ropts);
  SingleEngineOptions opt;
  opt.drain_slots = 4 * kDa + 64 * hops;
  SingleRunResult r = RunSingleSession(trace, adapter, opt);
  r.faults = adapter.fault_stats();
  if (stats != nullptr) *stats = r.faults;
  return r;
}

CellOut RunCell(const TaskContext& ctx) {
  const std::int64_t per_level = static_cast<std::int64_t>(
      kHops.size() * kWorkloads.size() * kSeeds.size());
  const std::int64_t per_hop =
      static_cast<std::int64_t>(kWorkloads.size() * kSeeds.size());
  const std::int64_t i = ctx.key.index;
  const FaultLevel& level = kLevels[static_cast<std::size_t>(i / per_level)];
  const std::int64_t hops =
      kHops[static_cast<std::size_t>((i % per_level) / per_hop)];
  const std::string& workload = kWorkloads[static_cast<std::size_t>(
      (i % per_hop) / static_cast<std::int64_t>(kSeeds.size()))];
  const std::uint64_t seed =
      kSeeds[static_cast<std::size_t>(i %
                                      static_cast<std::int64_t>(kSeeds.size()))];

  const auto trace =
      SingleSessionWorkload(workload, kBa, kDa / 2, g_horizon, seed);

  FaultPlan plan;
  plan.loss_rate = level.loss;
  plan.denial_rate = level.denial;
  plan.max_jitter = level.jitter;
  plan.seed = ctx.seed;

  const SingleRunResult base = RunOne(trace, hops, FaultPlan{}, nullptr);
  FaultStats stats;
  const SingleRunResult faulty = RunOne(trace, hops, plan, &stats);

  CellOut out;
  out.base_delay = base.delay.max_delay();
  out.fault_delay = faulty.delay.max_delay();
  out.base_util = base.global_utilization;
  out.fault_util = faulty.global_utilization;
  out.base_changes = base.changes;
  out.fault_changes = faulty.changes;
  out.final_queue = faulty.final_queue;
  out.conserved =
      faulty.total_arrivals == faulty.total_delivered + faulty.final_queue;
  out.capped = faulty.peak_allocation <= Bandwidth::FromBitsPerSlot(kBa);
  out.faults = stats;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("faults", &argc, argv);
  if (rep.quick()) g_horizon = 1500;
  BatchRunner runner(BatchOptions{rep.jobs(), 0});

  const std::int64_t per_level = static_cast<std::int64_t>(
      kHops.size() * kWorkloads.size() * kSeeds.size());
  const std::int64_t cells =
      static_cast<std::int64_t>(kLevels.size()) * per_level;

  const auto start = std::chrono::steady_clock::now();
  BatchResult<CellOut> batch;
  {
    ScopedTimer timer(rep.profile(), "sweep");
    batch = runner.Map<CellOut>(
        "faults", cells, [](const TaskContext& ctx) { return RunCell(ctx); });
  }
  rep.CountWork(2 * cells * g_horizon, cells);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!batch.ok()) {
    std::fprintf(stderr, "faults: %s\n", FormatErrors(batch.errors).c_str());
    return 1;
  }

  Table table({"loss/hop", "denial/hop", "hops", "max delay", "delay+",
               "util", "util-", "chg", "chg+", "losses", "denials",
               "timeouts", "retries", "fallbacks", "leftover"});
  bool all_conserved = true;
  bool all_capped = true;
  // Reduce grouped by (level, hops) in task-index order.
  for (std::size_t l = 0; l < kLevels.size(); ++l) {
    for (std::size_t h = 0; h < kHops.size(); ++h) {
      const std::int64_t per_hop =
          static_cast<std::int64_t>(kWorkloads.size() * kSeeds.size());
      Time worst_delay = 0;
      Time worst_erosion = 0;
      double min_util = 1.0;
      double worst_util_loss = 0;
      std::int64_t changes = 0;
      std::int64_t extra_changes = 0;
      Bits leftover = 0;
      FaultStats group;
      const std::int64_t first =
          static_cast<std::int64_t>(l) * static_cast<std::int64_t>(
              kHops.size()) * per_hop +
          static_cast<std::int64_t>(h) * per_hop;
      for (std::int64_t i = first; i < first + per_hop; ++i) {
        const CellOut& c = *batch.results[static_cast<std::size_t>(i)];
        worst_delay = std::max(worst_delay, c.fault_delay);
        worst_erosion =
            std::max(worst_erosion, c.fault_delay - c.base_delay);
        min_util = std::min(min_util, c.fault_util);
        worst_util_loss =
            std::max(worst_util_loss, c.base_util - c.fault_util);
        changes += c.fault_changes;
        extra_changes += c.fault_changes - c.base_changes;
        leftover += c.final_queue;
        group.Merge(c.faults);
        all_conserved = all_conserved && c.conserved;
        all_capped = all_capped && c.capped;
      }
      table.AddRow({Table::Num(kLevels[l].loss, 2),
                    Table::Num(kLevels[l].denial, 2), Table::Num(kHops[h]),
                    Table::Num(worst_delay), Table::Num(worst_erosion),
                    Table::Num(min_util, 3), Table::Num(worst_util_loss, 3),
                    Table::Num(changes), Table::Num(extra_changes),
                    Table::Num(group.losses), Table::Num(group.denials),
                    Table::Num(group.timeouts), Table::Num(group.retries),
                    Table::Num(group.fallbacks), Table::Num(leftover)});
      const std::string label = "loss=" + Table::Num(kLevels[l].loss, 2) +
                                ",denial=" + Table::Num(kLevels[l].denial, 2) +
                                ",hops=" + Table::Num(kHops[h]);
      rep.RowInfo(label, "max_delay", static_cast<double>(worst_delay));
      rep.RowInfo(label, "delay_erosion",
                  static_cast<double>(worst_erosion));
      rep.RowInfo(label, "util_loss", worst_util_loss);
      rep.RowInfo(label, "leftover_bits", static_cast<double>(leftover));
    }
  }
  // The two hard invariants (graceful degradation never loses bits or
  // exceeds B_A) double as the bench's machine-readable pass criteria.
  rep.RowMax("all", "unconserved_cells", all_conserved ? 0.0 : 1.0, 0.0);
  rep.RowMax("all", "cap_violations", all_capped ? 0.0 : 1.0, 0.0);

  std::printf("== FAULTS: control-plane loss/denial degradation ==\n");
  std::printf("B_A=%lld D_A=%lld U_A=1/6 W=%lld; %s x %zu seeds, %lld "
              "slots; erosion vs the fault-free adapter on the same path\n\n",
              static_cast<long long>(kBa), static_cast<long long>(kDa),
              static_cast<long long>(kW), "onoff+mixed", kSeeds.size(),
              static_cast<long long>(g_horizon));
  table.PrintAscii(std::cout);
  rep.Save("fault_degradation", table);
  std::printf("\ninvariants: bits conserved %s, allocation cap respected "
              "%s\n",
              all_conserved ? "yes" : "NO", all_capped ? "yes" : "NO");
  std::printf(
      "Expected shape: delay and utilization erode smoothly with the fault "
      "rate\n(graceful degradation — the session keeps serving at the last "
      "committed\nallocation); denial-heavy rows show fallback drains "
      "keeping 'leftover' at 0;\nno row loses bits or exceeds B_A.\n");
  std::fprintf(stderr, "[faults] %lld cells, %d jobs, %.2fs wall\n",
               static_cast<long long>(cells), runner.jobs(), secs);
  return rep.Finish();
}
