// THM7 — Theorem 7 reproduction: the modified single-session algorithm's
// change count per stage is O(log(1/U_O)) — independent of B_A — versus the
// base algorithm's O(log B_A).
//
// Sweep U_A at two very different B_A values and report the worst per-stage
// change count of both variants. The paper's claim is the shape: the base
// column moves with log2(B_A); the modified column moves with log2(1/U_O)
// and is flat across B_A.
#include <algorithm>
#include <iostream>

#include "analysis/table.h"
#include "core/single_session.h"
#include "reporter.h"
#include "sim/engine_single.h"
#include "traffic/workload_suite.h"
#include "util/power_of_two.h"

namespace {
using namespace bwalloc;

constexpr Time kDa = 16;
constexpr Time kW = 8;
constexpr Time kHorizon = 6000;

std::int64_t WorstPerStage(const SingleSessionParams& p,
                           SingleSessionOnline::Variant variant,
                           Time horizon) {
  std::int64_t worst = 0;
  for (const std::uint64_t seed : {21ULL, 22ULL}) {
    for (const char* name : {"onoff", "pareto", "mmpp", "mixed"}) {
      const auto trace = SingleSessionWorkload(
          name, p.offline_bandwidth(), p.offline_delay(), horizon, seed);
      SingleSessionOnline alg(p, variant);
      SingleEngineOptions opt;
      opt.drain_slots = 2 * kDa;
      RunSingleSession(trace, alg, opt);
      worst = std::max(worst, alg.max_changes_in_any_stage());
    }
  }
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("thm7", &argc, argv);
  const Time horizon = rep.quick() ? 1500 : kHorizon;
  Table table({"U_A", "log2(1/U_O)", "B_A", "log2(B_A)", "base chg/stage",
               "modified chg/stage"});

  const std::vector<std::int64_t> inv_uas =
      rep.quick() ? std::vector<std::int64_t>{6, 24}
                  : std::vector<std::int64_t>{6, 12, 24, 48};
  {
  ScopedTimer timer(rep.profile(), "sweep");
  for (const std::int64_t inv_ua : inv_uas) {
    for (const Bits ba : {Bits{64}, Bits{2048}}) {
      SingleSessionParams p;
      p.max_bandwidth = ba;
      p.max_delay = kDa;
      p.min_utilization = Ratio(1, inv_ua);
      p.window = kW;
      // U_O = 3/inv_ua; log2(1/U_O) = log2(inv_ua/3).
      const std::int64_t base =
          WorstPerStage(p, SingleSessionOnline::Variant::kBase, horizon);
      const std::int64_t modified =
          WorstPerStage(p, SingleSessionOnline::Variant::kModified, horizon);
      table.AddRow({"1/" + Table::Num(inv_ua),
                    Table::Num(CeilLog2((inv_ua + 2) / 3)),
                    Table::Num(ba), Table::Num(CeilLog2(ba)),
                    Table::Num(base), Table::Num(modified)});
      const std::string label =
          "U_A=1/" + Table::Num(inv_ua) + ",B_A=" + Table::Num(ba);
      rep.RowMax(label, "base_chg_per_stage", static_cast<double>(base),
                 static_cast<double>(CeilLog2(ba) + 3));
      // Theorem 7: log2(1/U_O) + O(1); +4 is the transition-counting
      // constant (one more than the base bound's +3: the modified ladder
      // re-enters from the utilization floor).
      rep.RowMax(label, "modified_chg_per_stage",
                 static_cast<double>(modified),
                 static_cast<double>(CeilLog2((inv_ua + 2) / 3) + 4));
      // 2 variants x 2 seeds x 4 workloads.
      rep.CountWork(16 * horizon, 16);
    }
  }
  }

  std::printf("== THM7: O(log 1/U_O) changes per stage, independent of B_A "
              "==\n");
  std::printf("D_A=%lld, W=%lld; worst case over 4 bursty workloads x 2 "
              "seeds\n\n",
              static_cast<long long>(kDa), static_cast<long long>(kW));
  table.PrintAscii(std::cout);
  rep.Save("thm7_modified", table);
  std::printf(
      "\nExpected shape (Theorem 7): 'modified' stays flat across the 32x "
      "B_A jump and\ngrows down the rows with log2(1/U_O) (+O(1)); 'base' "
      "is only bounded by the\nlarger l_A + 3 (bursts let the ladder skip "
      "levels, so its measured value can sit\nbelow the bound).\n");
  return rep.Finish();
}
