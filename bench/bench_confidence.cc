// CONF — statistical robustness of the headline THM6/THM14 measurements:
// every ratio in EXPERIMENTS.md re-measured over 12 seeds with a 95%
// confidence interval, so "the shape holds" is a distributional statement
// rather than a lucky draw.
#include <algorithm>
#include <iostream>

#include "analysis/aggregate.h"
#include "analysis/table.h"
#include "core/multi_phased.h"
#include "core/single_session.h"
#include "offline/offline_multi.h"
#include "offline/offline_single.h"
#include "reporter.h"
#include "sim/engine_multi.h"
#include "sim/engine_single.h"
#include "traffic/workload_suite.h"

namespace {
using namespace bwalloc;

constexpr int kSeeds = 12;

std::string MeanCi(const SampleStats& s) {
  return Table::Num(s.Mean(), 2) + " +/- " + Table::Num(s.Ci95(), 2);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("conf", &argc, argv);
  const int seeds = rep.quick() ? 4 : kSeeds;
  const Time single_horizon = rep.quick() ? 1500 : 4000;
  const Time multi_horizon = rep.quick() ? 2000 : 5000;
  // --- single session (THM6 regime) ----------------------------------------
  {
    ScopedTimer timer(rep.profile(), "sweep-single");
    SingleSessionParams p;
    p.max_bandwidth = 256;
    p.max_delay = 16;
    p.min_utilization = Ratio(1, 6);
    p.window = 16;
    OfflineParams off;
    off.max_bandwidth = p.offline_bandwidth();
    off.delay = p.offline_delay();
    off.utilization = p.offline_utilization();
    off.window = p.window;

    Table table({"workload", "ratio vs greedy (mean±ci95)", "max delay",
                 "min local util", "seeds"});
    for (const char* name : {"onoff", "pareto", "mmpp", "video", "mixed"}) {
      SampleStats ratio;
      SampleStats delay;
      SampleStats util;
      for (int seed = 1; seed <= seeds; ++seed) {
        const auto trace = SingleSessionWorkload(
            name, p.offline_bandwidth(), p.offline_delay(), single_horizon,
            static_cast<std::uint64_t>(seed));
        SingleSessionOnline alg(p);
        SingleEngineOptions opt;
        opt.drain_slots = 32;
        opt.utilization_scan_window = p.window + 5 * p.offline_delay();
        const SingleRunResult r = RunSingleSession(trace, alg, opt);
        const OfflineSchedule greedy = GreedyMinChangeSchedule(trace, off);
        if (greedy.feasible && greedy.changes() > 0) {
          ratio.Add(static_cast<double>(r.changes) /
                    static_cast<double>(greedy.changes()));
        }
        delay.Add(static_cast<double>(r.delay.max_delay()));
        util.Add(r.worst_best_window_utilization);
      }
      table.AddRow({name, MeanCi(ratio), Table::Num(delay.Max(), 0),
                    Table::Num(util.Min(), 3), Table::Num(ratio.count())});
      // The hard THM6 bounds must hold in every seed.
      rep.RowMax(name, "max_delay", delay.Max(), 16.0);
      rep.RowMin(name, "min_local_util", util.Min(), 1.0 / 6.0);
      rep.RowInfo(name, "ratio_vs_greedy_mean", ratio.Mean());
      rep.CountWork(seeds * single_horizon, seeds);
    }
    std::printf("== CONF (single): THM6 ratios over %d seeds ==\n"
                "B_A=256, D_A=16, U_A=1/6, W=16; delay bound 16, util bound "
                "0.167\n\n",
                seeds);
    table.PrintAscii(std::cout);
  }

  // --- multi session (THM14 regime) ----------------------------------------
  {
    ScopedTimer timer(rep.profile(), "sweep-multi");
    Table table({"k", "ratio vs offline (mean±ci95)", "max delay",
                 "peak ovf/B_O", "seeds"});
    const std::vector<std::int64_t> multi_ks =
        rep.quick() ? std::vector<std::int64_t>{4, 8}
                    : std::vector<std::int64_t>{4, 8, 16};
    for (const std::int64_t k : multi_ks) {
      const Bits bo = 16 * k;
      SampleStats ratio;
      SampleStats delay;
      SampleStats ovf;
      for (int seed = 1; seed <= seeds; ++seed) {
        const auto traces = MultiSessionWorkload(
            MultiWorkloadKind::kRotatingHotspot, k, bo, 8, multi_horizon,
            static_cast<std::uint64_t>(1000 + seed));
        MultiSessionParams p;
        p.sessions = k;
        p.offline_bandwidth = bo;
        p.offline_delay = 8;
        PhasedMulti sys(p);
        MultiEngineOptions opt;
        opt.drain_slots = 32;
        const MultiRunResult r = RunMultiSession(traces, sys, opt);
        const MultiOfflineSchedule offline =
            GreedyMultiSchedule(traces, bo, 8);
        if (offline.feasible && offline.local_changes() > 0) {
          ratio.Add(static_cast<double>(r.local_changes) /
                    static_cast<double>(offline.local_changes()));
        }
        delay.Add(static_cast<double>(r.delay.max_delay()));
        ovf.Add(r.peak_overflow_allocation.ToDouble() /
                static_cast<double>(bo));
      }
      table.AddRow({Table::Num(k), MeanCi(ratio),
                    Table::Num(delay.Max(), 0), Table::Num(ovf.Max(), 2),
                    Table::Num(ratio.count())});
      const std::string label = "k=" + Table::Num(k);
      rep.RowMax(label, "max_delay", delay.Max(), 16.0);
      rep.RowMax(label, "peak_ovf_over_bo", ovf.Max(), 2.0);
      rep.RowInfo(label, "ratio_vs_offline_mean", ratio.Mean());
      rep.CountWork(seeds * multi_horizon, seeds);
    }
    std::printf("\n== CONF (multi): THM14 ratios over %d seeds ==\n"
                "rotating-hotspot, B_O=16k, D_O=8; delay bound 16, overflow "
                "budget 2 B_O\n\n",
                seeds);
    table.PrintAscii(std::cout);
  }

  std::printf(
      "\nReading: the competitive ratios are tight distributions (small "
      "ci95), nowhere\nnear their worst-case budgets, and the hard bounds "
      "(delay, overflow) hold in\nevery seed — the EXPERIMENTS.md tables "
      "are not lucky draws.\n");
  return rep.Finish();
}
