# Determinism check driver: runs ${EXE} at --jobs=1, --jobs=4 and --jobs=0
# (hardware concurrency) and fails unless stdout is byte-identical — the
# batch runner's replay contract. Timing lines go to stderr and are ignored.
# Outputs are held in separate variables (not a CMake list) because the
# table text may legally contain semicolons.
if(NOT DEFINED EXE)
  message(FATAL_ERROR "usage: cmake -DEXE=<bench binary> -P compare_jobs.cmake")
endif()

foreach(jobs 1 4 0)
  execute_process(COMMAND ${EXE} --jobs=${jobs}
    OUTPUT_VARIABLE out_${jobs} RESULT_VARIABLE code ERROR_QUIET)
  if(NOT code EQUAL 0)
    message(FATAL_ERROR "${EXE} --jobs=${jobs} exited ${code}")
  endif()
endforeach()

if(NOT out_1 STREQUAL out_4)
  message(FATAL_ERROR "--jobs=1 and --jobs=4 outputs differ")
endif()
if(NOT out_1 STREQUAL out_0)
  message(FATAL_ERROR "--jobs=1 and --jobs=0 (hw) outputs differ")
endif()
