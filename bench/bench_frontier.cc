// FRONT — the renegotiation-rate / utilization frontier (the evaluation
// methodology of the cited experimental work [GKT95, ACHM96], applied to
// this paper's algorithm).
//
// Every dynamic-allocation policy has a knob trading changes against
// tracking quality: the online algorithm's utilization window W, the
// periodic heuristic's renegotiation period, the EWMA heuristic's
// hysteresis band. Sweep each knob at a fixed delay target and print the
// frontier each policy traces in (changes per kslot, global utilization)
// space, with the clairvoyant greedy as the reference point.
// The second half is the event-engine scale frontier: the phased
// multi-session algorithm driven by RunMultiSessionEvent over heavy-tail
// Pareto-burst sparse traces, from 1k up to 1M sessions. The headline
// metric is ns per slot per *active* session (cell wall time divided by
// the engine's touched_session_slots counter) — the quantity the
// event-driven design holds flat while naive per-slot cost grows with k.
// At small k the naive engine runs the same trace as a comparator: its
// MultiRunResult must match the event engine's exactly (the differential
// contract), and its ns/slot/active column shows the gap the sparse
// engine buys.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/table.h"
#include "obs/telemetry/hub.h"
#include "baseline/exp_smoothing.h"
#include "baseline/periodic.h"
#include "core/multi_phased.h"
#include "core/single_session.h"
#include "offline/offline_single.h"
#include "reporter.h"
#include "sim/engine_multi.h"
#include "sim/engine_single.h"
#include "traffic/sparse_bursts.h"
#include "traffic/workload_suite.h"

namespace {
using namespace bwalloc;

constexpr Bits kBa = 256;
constexpr Time kDa = 32;  // D_O = 16
constexpr Time kHorizon = 20000;

double PerKslot(std::int64_t changes, Time horizon) {
  return 1000.0 * static_cast<double>(changes) /
         static_cast<double>(horizon);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("frontier", &argc, argv);
  const Time horizon = rep.quick() ? 4000 : kHorizon;
  const auto trace =
      SingleSessionWorkload("mixed", kBa, kDa / 2, horizon, 606);
  SingleEngineOptions opt;
  opt.drain_slots = 4 * kDa;

  Table table({"policy", "knob", "changes/kslot", "global util",
               "max delay", "within D_A"});

  {
  ScopedTimer timer(rep.profile(), "sweep");
  for (const Time w : {Time{16}, Time{32}, Time{64}, Time{128}, Time{256}}) {
    SingleSessionParams p;
    p.max_bandwidth = kBa;
    p.max_delay = kDa;
    p.min_utilization = Ratio(1, 6);
    p.window = w;
    SingleSessionOnline alg(p);
    const SingleRunResult r = RunSingleSession(trace, alg, opt);
    table.AddRow({"online (Fig.3)", "W=" + Table::Num(w),
                  Table::Num(PerKslot(r.changes, r.horizon), 2),
                  Table::Num(r.global_utilization, 3),
                  Table::Num(r.delay.max_delay()),
                  r.delay.max_delay() <= kDa ? "yes" : "NO"});
    const std::string label = "online,W=" + Table::Num(w);
    // The online algorithm keeps its delay guarantee at every knob value.
    rep.RowMax(label, "max_delay", static_cast<double>(r.delay.max_delay()),
               static_cast<double>(kDa));
    rep.RowInfo(label, "changes_per_kslot", PerKslot(r.changes, r.horizon));
    rep.RowInfo(label, "global_util", r.global_utilization);
    rep.CountWork(horizon, 1);
  }

  for (const Time period : {kDa / 2, kDa, 2 * kDa, 4 * kDa, 8 * kDa}) {
    PeriodicAllocator alg(period, 130, kDa);
    const SingleRunResult r = RunSingleSession(trace, alg, opt);
    table.AddRow({"periodic [GKT95]", "T=" + Table::Num(period),
                  Table::Num(PerKslot(r.changes, r.horizon), 2),
                  Table::Num(r.global_utilization, 3),
                  Table::Num(r.delay.max_delay()),
                  r.delay.max_delay() <= kDa ? "yes" : "NO"});
    const std::string label = "periodic,T=" + Table::Num(period);
    rep.RowInfo(label, "max_delay", static_cast<double>(r.delay.max_delay()));
    rep.RowInfo(label, "global_util", r.global_utilization);
    rep.CountWork(horizon, 1);
  }

  for (const std::int64_t band : {0, 25, 50, 100, 200}) {
    ExpSmoothingAllocator alg(10, band, kDa);
    const SingleRunResult r = RunSingleSession(trace, alg, opt);
    table.AddRow({"ewma [ACHM96]", "band=" + Table::Num(band) + "%",
                  Table::Num(PerKslot(r.changes, r.horizon), 2),
                  Table::Num(r.global_utilization, 3),
                  Table::Num(r.delay.max_delay()),
                  r.delay.max_delay() <= kDa ? "yes" : "NO"});
    const std::string label = "ewma,band=" + Table::Num(band);
    rep.RowInfo(label, "max_delay", static_cast<double>(r.delay.max_delay()));
    rep.RowInfo(label, "global_util", r.global_utilization);
    rep.CountWork(horizon, 1);
  }

  {
    OfflineParams off;
    off.max_bandwidth = kBa;
    off.delay = kDa / 2;
    off.utilization = Ratio(1, 2);
    off.window = kDa;
    const OfflineSchedule s = GreedyMinChangeSchedule(trace, off);
    if (s.feasible) {
      const ScheduleCheck check = ValidateSchedule(trace, s);
      table.AddRow({"offline greedy", "-",
                    Table::Num(PerKslot(s.changes(), s.horizon), 2),
                    Table::Num(check.global_utilization, 3),
                    Table::Num(check.max_delay), "yes"});
      rep.RowInfo("offline", "changes_per_kslot",
                  PerKslot(s.changes(), s.horizon));
      rep.RowInfo("offline", "global_util", check.global_utilization);
    }
  }
  }

  std::printf("== FRONT: changes-vs-utilization frontier at delay target "
              "D_A=%lld ==\n",
              static_cast<long long>(kDa));
  std::printf("workload 'mixed', B_A=%lld, %lld slots; each policy swept "
              "over its own knob\n\n",
              static_cast<long long>(kBa),
              static_cast<long long>(horizon));
  table.PrintAscii(std::cout);
  rep.Save("frontier", table);

  // --- event-engine scale frontier ---------------------------------------
  // Phased multi-session algorithm on heavy-tail sparse bursts, 1k -> 1M
  // sessions. The event engine's cost is charged per *touched* session-
  // slot; the naive comparator (small k only — it materializes the dense
  // k x horizon matrix) pays for every session every slot and must still
  // produce the identical MultiRunResult.
  {
    Table scale({"k", "engine", "slots", "touched sess-slots",
                 "ns/slot/active", "local changes"});
    const std::vector<std::int64_t> ks =
        rep.quick() ? std::vector<std::int64_t>{1024, 8192}
                    : std::vector<std::int64_t>{1024, 16384, 262144, 1048576};
    const Time scale_horizon = rep.quick() ? 1200 : 3000;
    PhaseProfile prof;
    for (const std::int64_t k : ks) {
      SparseBurstParams bp;
      bp.sessions = k;
      bp.horizon = scale_horizon;
      bp.bursts_per_slot = static_cast<double>(k) / 256.0;
      bp.burst_scale = 32;
      bp.tail_cap = 8;
      bp.seed = 0x5CA1EULL + static_cast<std::uint64_t>(k);
      const SparseMultiTrace sparse = SparseBurstTrace(bp);

      MultiSessionParams p;
      p.sessions = k;
      p.offline_bandwidth = 16 * k;  // stays a power of two for these k
      p.offline_delay = 16;
      MultiEngineOptions eopt;
      eopt.drain_slots = 8 * p.offline_delay;

      EventEngineStats stats;
      eopt.event_stats = &stats;
      PhasedMulti event_sys(p);
      const std::string elabel = "event,k=" + Table::Num(k);
      MultiRunResult er;
      {
        ScopedTimer timer(&prof, elabel.c_str());
        er = RunMultiSessionEvent(sparse, event_sys, eopt);
      }
      const double ens = static_cast<double>(prof.phases().at(elabel).ns);
      const double etouched =
          std::max(static_cast<double>(stats.touched_session_slots), 1.0);
      scale.AddRow({Table::Num(k), "event", Table::Num(scale_horizon),
                    Table::Num(stats.touched_session_slots),
                    Table::Num(ens / etouched, 1),
                    Table::Num(er.local_changes)});
      rep.RowInfo(elabel, "ns_per_slot_per_active_session", ens / etouched);
      rep.RowInfo(elabel, "touched_session_slots",
                  static_cast<double>(stats.touched_session_slots));
      rep.RowInfo(elabel, "cell_ns", ens);
      rep.CountWork(scale_horizon, 1);

      if (k <= 16384) {
        std::vector<std::vector<Bits>> dense(
            static_cast<std::size_t>(k),
            std::vector<Bits>(static_cast<std::size_t>(scale_horizon), 0));
        for (Time t = 0; t < sparse.horizon; ++t) {
          for (const SessionArrival& a : sparse.Slot(t)) {
            dense[static_cast<std::size_t>(a.session)]
                 [static_cast<std::size_t>(t)] = a.bits;
          }
        }
        PhasedMulti naive_sys(p);
        MultiEngineOptions nopt;
        nopt.drain_slots = eopt.drain_slots;
        const std::string nlabel = "naive,k=" + Table::Num(k);
        MultiRunResult nr;
        {
          ScopedTimer timer(&prof, nlabel.c_str());
          nr = RunMultiSession(dense, naive_sys, nopt);
        }
        const double nns = static_cast<double>(prof.phases().at(nlabel).ns);
        const double ntouched = static_cast<double>(k) *
                                static_cast<double>(scale_horizon +
                                                    nopt.drain_slots);
        scale.AddRow({Table::Num(k), "naive", Table::Num(scale_horizon),
                      Table::Num(static_cast<std::int64_t>(ntouched)),
                      Table::Num(nns / ntouched, 1),
                      Table::Num(nr.local_changes)});
        rep.RowInfo(nlabel, "ns_per_slot_per_active_session", nns / ntouched);
        rep.RowInfo(nlabel, "cell_ns", nns);
        // The differential contract, enforced in the bench too: identical
        // results or the telemetry gate fails the run.
        rep.RowMax(nlabel, "result_mismatch", nr == er ? 0.0 : 1.0, 0.0);
        rep.CountWork(scale_horizon, 1);
      }
    }
    std::printf("\n== FRONTIER scale: event engine vs naive, phased "
                "algorithm, Pareto bursts ==\n");
    scale.PrintAscii(std::cout);
    rep.Save("frontier_scale", scale);
  }

  // --- telemetry overhead gate -------------------------------------------
  // The live-telemetry contract: striped shards + sampled slot timers are
  // cheap enough to leave on. Run one event cell with metrics off and on,
  // keep the min wall time of a few reps each (noise floor), and gate the
  // relative overhead at 5%. The results must also match exactly —
  // telemetry is a side lane, never a behaviour change.
  {
    SparseBurstParams bp;
    bp.sessions = 4096;
    bp.horizon = rep.quick() ? 1200 : 3000;
    bp.bursts_per_slot = static_cast<double>(bp.sessions) / 256.0;
    bp.burst_scale = 32;
    bp.tail_cap = 8;
    bp.seed = 0x7E1EULL;
    const SparseMultiTrace sparse = SparseBurstTrace(bp);

    MultiSessionParams p;
    p.sessions = bp.sessions;
    p.offline_bandwidth = 16 * bp.sessions;
    p.offline_delay = 16;

    // Interleave off/on reps (after a discarded warmup each) so clock and
    // cache drift land on both modes equally. Each adjacent pair yields an
    // on/off ratio; the gate uses the MEDIAN pair ratio, which a single
    // scheduler hiccup in either direction cannot move — min-of-reps alone
    // still flapped several percent on shared CI boxes.
    constexpr int kPairs = 7;
    double best_ns[2] = {0.0, 0.0};
    MultiRunResult results[2];
    auto run_cell = [&](bool metrics_on) {
      telemetry::TelemetryHub hub;
      MultiEngineOptions eopt;
      eopt.drain_slots = 8 * p.offline_delay;
      if (metrics_on) eopt.telemetry = hub.ShardForCurrentThread();
      PhasedMulti sys(p);
      const std::int64_t t0 = telemetry::MonotonicNowNs();
      results[metrics_on ? 1 : 0] = RunMultiSessionEvent(sparse, sys, eopt);
      rep.CountWork(bp.horizon, 1);
      return static_cast<double>(telemetry::MonotonicNowNs() - t0);
    };
    run_cell(false);
    run_cell(true);
    std::vector<double> ratios;
    ratios.reserve(kPairs);
    for (int r = 0; r < kPairs; ++r) {
      const double off_ns = run_cell(false);
      const double on_ns = run_cell(true);
      ratios.push_back(on_ns / std::max(off_ns, 1.0));
      if (r == 0 || off_ns < best_ns[0]) best_ns[0] = off_ns;
      if (r == 0 || on_ns < best_ns[1]) best_ns[1] = on_ns;
    }
    std::sort(ratios.begin(), ratios.end());
    const double rel = std::max(0.0, ratios[ratios.size() / 2] - 1.0);
    std::printf("\n== FRONTIER telemetry overhead: event cell k=%lld, "
                "best metrics off %.2fms vs on %.2fms, median pair overhead "
                "%+.2f%% ==\n",
                static_cast<long long>(bp.sessions), best_ns[0] / 1e6,
                best_ns[1] / 1e6, 100.0 * rel);
    rep.RowInfo("telemetry", "metrics_off_ns", best_ns[0]);
    rep.RowInfo("telemetry", "metrics_on_ns", best_ns[1]);
    rep.RowMax("telemetry", "metrics_on_overhead", rel, 0.05);
    rep.RowMax("telemetry", "result_mismatch",
               results[0] == results[1] ? 0.0 : 1.0, 0.0);
  }
  std::printf(
      "\nExpected shape: the online rows trace the outer frontier — at any "
      "given change\nbudget they deliver equal-or-better utilization while "
      "never breaking the delay\ntarget, which the periodic rows do as "
      "soon as their period stretches; the\nclairvoyant point shows how "
      "much headroom clairvoyance is worth.\n");
  return rep.Finish();
}
