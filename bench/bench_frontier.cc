// FRONT — the renegotiation-rate / utilization frontier (the evaluation
// methodology of the cited experimental work [GKT95, ACHM96], applied to
// this paper's algorithm).
//
// Every dynamic-allocation policy has a knob trading changes against
// tracking quality: the online algorithm's utilization window W, the
// periodic heuristic's renegotiation period, the EWMA heuristic's
// hysteresis band. Sweep each knob at a fixed delay target and print the
// frontier each policy traces in (changes per kslot, global utilization)
// space, with the clairvoyant greedy as the reference point.
#include <cstdio>
#include <iostream>

#include "analysis/table.h"
#include "baseline/exp_smoothing.h"
#include "baseline/periodic.h"
#include "core/single_session.h"
#include "offline/offline_single.h"
#include "reporter.h"
#include "sim/engine_single.h"
#include "traffic/workload_suite.h"

namespace {
using namespace bwalloc;

constexpr Bits kBa = 256;
constexpr Time kDa = 32;  // D_O = 16
constexpr Time kHorizon = 20000;

double PerKslot(std::int64_t changes, Time horizon) {
  return 1000.0 * static_cast<double>(changes) /
         static_cast<double>(horizon);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("frontier", &argc, argv);
  const Time horizon = rep.quick() ? 4000 : kHorizon;
  const auto trace =
      SingleSessionWorkload("mixed", kBa, kDa / 2, horizon, 606);
  SingleEngineOptions opt;
  opt.drain_slots = 4 * kDa;

  Table table({"policy", "knob", "changes/kslot", "global util",
               "max delay", "within D_A"});

  {
  ScopedTimer timer(rep.profile(), "sweep");
  for (const Time w : {Time{16}, Time{32}, Time{64}, Time{128}, Time{256}}) {
    SingleSessionParams p;
    p.max_bandwidth = kBa;
    p.max_delay = kDa;
    p.min_utilization = Ratio(1, 6);
    p.window = w;
    SingleSessionOnline alg(p);
    const SingleRunResult r = RunSingleSession(trace, alg, opt);
    table.AddRow({"online (Fig.3)", "W=" + Table::Num(w),
                  Table::Num(PerKslot(r.changes, r.horizon), 2),
                  Table::Num(r.global_utilization, 3),
                  Table::Num(r.delay.max_delay()),
                  r.delay.max_delay() <= kDa ? "yes" : "NO"});
    const std::string label = "online,W=" + Table::Num(w);
    // The online algorithm keeps its delay guarantee at every knob value.
    rep.RowMax(label, "max_delay", static_cast<double>(r.delay.max_delay()),
               static_cast<double>(kDa));
    rep.RowInfo(label, "changes_per_kslot", PerKslot(r.changes, r.horizon));
    rep.RowInfo(label, "global_util", r.global_utilization);
    rep.CountWork(horizon, 1);
  }

  for (const Time period : {kDa / 2, kDa, 2 * kDa, 4 * kDa, 8 * kDa}) {
    PeriodicAllocator alg(period, 130, kDa);
    const SingleRunResult r = RunSingleSession(trace, alg, opt);
    table.AddRow({"periodic [GKT95]", "T=" + Table::Num(period),
                  Table::Num(PerKslot(r.changes, r.horizon), 2),
                  Table::Num(r.global_utilization, 3),
                  Table::Num(r.delay.max_delay()),
                  r.delay.max_delay() <= kDa ? "yes" : "NO"});
    const std::string label = "periodic,T=" + Table::Num(period);
    rep.RowInfo(label, "max_delay", static_cast<double>(r.delay.max_delay()));
    rep.RowInfo(label, "global_util", r.global_utilization);
    rep.CountWork(horizon, 1);
  }

  for (const std::int64_t band : {0, 25, 50, 100, 200}) {
    ExpSmoothingAllocator alg(10, band, kDa);
    const SingleRunResult r = RunSingleSession(trace, alg, opt);
    table.AddRow({"ewma [ACHM96]", "band=" + Table::Num(band) + "%",
                  Table::Num(PerKslot(r.changes, r.horizon), 2),
                  Table::Num(r.global_utilization, 3),
                  Table::Num(r.delay.max_delay()),
                  r.delay.max_delay() <= kDa ? "yes" : "NO"});
    const std::string label = "ewma,band=" + Table::Num(band);
    rep.RowInfo(label, "max_delay", static_cast<double>(r.delay.max_delay()));
    rep.RowInfo(label, "global_util", r.global_utilization);
    rep.CountWork(horizon, 1);
  }

  {
    OfflineParams off;
    off.max_bandwidth = kBa;
    off.delay = kDa / 2;
    off.utilization = Ratio(1, 2);
    off.window = kDa;
    const OfflineSchedule s = GreedyMinChangeSchedule(trace, off);
    if (s.feasible) {
      const ScheduleCheck check = ValidateSchedule(trace, s);
      table.AddRow({"offline greedy", "-",
                    Table::Num(PerKslot(s.changes(), s.horizon), 2),
                    Table::Num(check.global_utilization, 3),
                    Table::Num(check.max_delay), "yes"});
      rep.RowInfo("offline", "changes_per_kslot",
                  PerKslot(s.changes(), s.horizon));
      rep.RowInfo("offline", "global_util", check.global_utilization);
    }
  }
  }

  std::printf("== FRONT: changes-vs-utilization frontier at delay target "
              "D_A=%lld ==\n",
              static_cast<long long>(kDa));
  std::printf("workload 'mixed', B_A=%lld, %lld slots; each policy swept "
              "over its own knob\n\n",
              static_cast<long long>(kBa),
              static_cast<long long>(horizon));
  table.PrintAscii(std::cout);
  rep.Save("frontier", table);
  std::printf(
      "\nExpected shape: the online rows trace the outer frontier — at any "
      "given change\nbudget they deliver equal-or-better utilization while "
      "never breaking the delay\ntarget, which the periodic rows do as "
      "soon as their period stretches; the\nclairvoyant point shows how "
      "much headroom clairvoyance is worth.\n");
  return rep.Finish();
}
