// CHURN — session lifecycle under admission control: what each arrival
// process costs and what the policy concedes to it.
//
// A churned PhasedMulti cell (B_O=64, D_O=8) runs the full
// admission/activation/departure/shedding lifecycle for every arrival
// process {poisson, mmpp, adversarial} at a sweep of offered arrival
// rates, all through greedy admission, plus one booked-ahead ledger cell
// with an overload queue small enough to force sheds. Reported per cell:
// ns/slot, admitted fraction, shed count, delivered-bits utilization of
// the offered load.
//
// Deterministic guards (bench_diff regresses on these, no wall clock
// involved): the adversarial stream's admitted fraction stays under half
// the honest Poisson fraction at the same offered rate — the paper's
// lower-bound structure as a standing bench row — and every cell admits
// at least one session while never shedding a session that had started.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "core/admission.h"
#include "core/multi_phased.h"
#include "reporter.h"
#include "sim/churn.h"
#include "sim/engine_multi.h"
#include "traffic/arrivals.h"

namespace {
using namespace bwalloc;

constexpr Bits kBo = 64;
constexpr Time kDo = 8;

struct Config {
  std::string label;
  ArrivalProcess process = ArrivalProcess::kPoisson;
  AdmissionPolicyKind policy = AdmissionPolicyKind::kGreedy;
  double rate = 0.25;
  Time book_ahead = 0;
  std::int64_t max_pending = 0;
};

struct CellOut {
  double ns_per_slot = 0;
  ChurnStats churn;
  Bits arrivals = 0;
  Bits delivered = 0;
};

CellOut RunCell(const Config& cfg, Time horizon) {
  ArrivalParams ap;
  ap.horizon = horizon;
  ap.offline_bandwidth = kBo;
  ap.offline_delay = kDo;
  ap.arrival_rate = cfg.rate;
  ap.max_book_ahead = cfg.book_ahead;
  ap.seed = 42;
  const ChurnPlan plan = GenerateArrivals(cfg.process, ap);

  AdmissionConfig ac;
  ac.policy = cfg.policy;
  ac.capacity = kBo;
  ac.horizon = horizon;
  AdmissionController policy(ac);
  ChurnDriver driver(plan, policy, cfg.max_pending);

  MultiSessionParams p;
  p.sessions = plan.sessions;
  p.offline_bandwidth = kBo;
  p.offline_delay = kDo;
  PhasedMulti sys(p);

  MultiEngineOptions opt;
  opt.churn = &driver;
  opt.drain_slots = 8 * kDo;

  const auto start = std::chrono::steady_clock::now();
  const MultiRunResult r = RunMultiSession(plan.MaterializeTraces(), sys, opt);
  const double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count();

  CellOut out;
  out.ns_per_slot = ns / static_cast<double>(horizon);
  out.churn = r.churn;
  out.arrivals = r.total_arrivals;
  out.delivered = r.total_delivered;
  return out;
}

double Frac(std::int64_t num, std::int64_t den) {
  return den > 0 ? static_cast<double>(num) / static_cast<double>(den) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("churn", &argc, argv);
  const Time horizon = rep.quick() ? 2000 : 12000;

  std::vector<Config> configs;
  const std::vector<double> rates = rep.quick()
                                        ? std::vector<double>{0.25}
                                        : std::vector<double>{0.1, 0.25, 0.5};
  for (const double rate : rates) {
    for (const ArrivalProcess proc :
         {ArrivalProcess::kPoisson, ArrivalProcess::kMmpp,
          ArrivalProcess::kAdversarial}) {
      Config c;
      c.label = std::string(ToString(proc)) + ",greedy,r=" +
                Table::Num(rate, 2);
      c.process = proc;
      c.rate = rate;
      configs.push_back(c);
    }
  }
  // Booked-ahead reservations through the slot ledger, overload queue
  // capped at 2: the shedding path runs in every report.
  {
    Config c;
    c.label = "poisson,ledger,book=6";
    c.policy = AdmissionPolicyKind::kLedger;
    c.rate = rates.back();
    c.book_ahead = 6;
    c.max_pending = 2;
    configs.push_back(c);
  }

  std::vector<CellOut> cells;
  {
    ScopedTimer timer(rep.profile(), "sweep");
    for (const Config& c : configs) cells.push_back(RunCell(c, horizon));
  }
  rep.CountWork(static_cast<std::int64_t>(configs.size()) * horizon,
                static_cast<std::int64_t>(configs.size()));

  Table table({"config", "offered", "admitted", "rejected", "shed",
               "admit frac", "deliver frac", "ns/slot"});
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
    const CellOut& o = cells[i];
    const double admit_frac = Frac(o.churn.admitted, o.churn.offered);
    const double deliver_frac =
        o.arrivals > 0 ? Frac(o.delivered, o.arrivals) : 0.0;
    table.AddRow({c.label, Table::Num(o.churn.offered),
                  Table::Num(o.churn.admitted), Table::Num(o.churn.rejected),
                  Table::Num(o.churn.shed), Table::Num(admit_frac, 3),
                  Table::Num(deliver_frac, 3), Table::Num(o.ns_per_slot, 1)});
    rep.RowInfo(c.label, "ns_per_slot", o.ns_per_slot);
    rep.RowInfo(c.label, "admitted_fraction", admit_frac);
    rep.RowInfo(c.label, "shed", static_cast<double>(o.churn.shed));
    // Lifecycle sanity, deterministic per seed: something was offered and
    // something was admitted in every cell.
    rep.RowMin(c.label, "admitted", static_cast<double>(o.churn.admitted),
               1.0);
  }

  // The acceptance property as standing bench rows: at each offered rate
  // the adversarial stream forces under half the honest Poisson stream's
  // admitted fraction out of the same greedy policy.
  for (std::size_t i = 0; i + 2 < configs.size(); i += 3) {
    const double honest = Frac(cells[i].churn.admitted,
                               cells[i].churn.offered);
    const double adversarial = Frac(cells[i + 2].churn.admitted,
                                    cells[i + 2].churn.offered);
    rep.RowMax("adversary," + configs[i].label, "admitted_fraction",
               adversarial, honest / 2.0);
  }
  // The ledger cell actually shed (the overload path was exercised).
  rep.RowMin(configs.back().label, "shed_floor",
             static_cast<double>(cells.back().churn.shed), 1.0);

  std::printf("== CHURN: admission control vs arrival process ==\n");
  std::printf("phased, B_O=%lld, D_O=%lld, %lld slots, greedy unless noted\n\n",
              static_cast<long long>(kBo), static_cast<long long>(kDo),
              static_cast<long long>(horizon));
  table.PrintAscii(std::cout);
  rep.Save("churn_admission", table);
  std::printf(
      "\nExpected shape: honest admitted fraction falls smoothly as the "
      "offered rate\ngrows (capacity is finite); the adversarial stream "
      "collapses it at every rate\nby filling capacity with two long-lived "
      "blockers per wave so each per-slot\nvictim bounces. Sheds appear "
      "only in the booked-ahead ledger cell, where the\npending queue is "
      "capped.\n");
  return rep.Finish();
}
