// RUNNER — batch-dispatch overhead under pathological cost skew: the
// work-stealing pool against the mutex-cursor pool it replaced.
//
// The grid is deliberately hostile to a central cursor: tens of
// thousands of near-trivial cells (cost 1..4 spin units, Zipf-flavoured)
// plus one 1000x spike, so per-task dispatch cost dominates useful work.
// The old pool paid two mutex acquisitions per task; the work-stealing
// pool claims block-chunked ranges with one deque operation per chunk,
// so its dispatch cost amortizes ~1000x. MutexPool below is a faithful
// copy of the replaced implementation (kept here as the comparator — the
// production runner no longer contains it).
//
// Rows: ns/task per {pool}x{jobs} config, the steal-vs-mutex speedup at
// jobs=2/4 (jobs=4 is bounded: >= 1.3x or the bench fails), the
// scheduler's own telemetry (chunks, steals, failed steals, backoff
// rounds, idle waits) from ThreadPool::stats(), and a checksum-equality
// guard pinning every config's XOR-folded results to the serial
// reference — a scheduler that loses or duplicates a cell fails here
// before any throughput number matters. Gated metric: the JSON
// throughput block covers the profiled steal-pool sweeps, so
// tools/bench_diff --max-slowdown watches the new scheduler, not the
// comparator.
#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <iostream>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "analysis/table.h"
#include "obs/stopwatch.h"
#include "reporter.h"
#include "runner/task.h"
#include "runner/thread_pool.h"
#include "util/rng.h"

namespace {
using namespace bwalloc;

// The pre-replacement pool, verbatim: every task index is handed out
// under a mutex, and every completion takes the mutex again.
class MutexPool {
 public:
  explicit MutexPool(int threads) : threads_(threads) {
    workers_.reserve(static_cast<std::size_t>(threads_ - 1));
    for (int i = 1; i < threads_; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~MutexPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void RunIndexed(std::size_t count,
                  const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (threads_ == 1) {
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = &fn;
      count_ = count;
      next_ = 0;
      completed_ = 0;
      ++generation_;
    }
    work_cv_.notify_all();
    DrainCurrentBatch();
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return completed_ == count_; });
    job_ = nullptr;
  }

 private:
  void DrainCurrentBatch() {
    for (;;) {
      std::size_t index;
      const std::function<void(std::size_t)>* job;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (job_ == nullptr || next_ >= count_) return;
        index = next_++;
        job = job_;
      }
      (*job)(index);
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++completed_;
        last = completed_ == count_;
      }
      if (last) {
        done_cv_.notify_all();
        return;
      }
    }
  }

  void WorkerLoop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock,
                      [&] { return stop_ || generation_ != seen_generation; });
        if (stop_) return;
        seen_generation = generation_;
      }
      DrainCurrentBatch();
    }
  }

  const int threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t count_ = 0;
  std::size_t next_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

// Spin units for cell i: Zipf-flavoured 1..4 for the crowd, 1000x for
// the one pathological cell a third of the way in.
std::int64_t CellCost(std::size_t i, std::size_t spike) {
  if (i == spike) return 4000;
  return 1 + static_cast<std::int64_t>(i % 4);
}

// Deterministic per-cell work: `units` rounds of the cell's own keyed
// RNG stream folded into a checksum. Thread- and schedule-independent.
std::uint64_t SpinCell(std::size_t i, std::int64_t units) {
  Rng rng(TaskSeed("bench-runner", static_cast<std::int64_t>(i)));
  std::uint64_t acc = 0;
  for (std::int64_t u = 0; u < units; ++u) {
    acc = acc * 6364136223846793005ULL + rng.Next();
  }
  return acc;
}

struct RunOut {
  double best_ns = 0;        // best-of-reps wall time for one full grid
  std::uint64_t fold = 0;    // XOR over all cell checksums (last rep)
};

// Runs the full skewed grid `reps` times on `pool`, keeping the best
// wall time (the scheduler's floor, clean of stray preemptions).
template <typename Pool>
RunOut RunGrid(Pool& pool, std::size_t cells, std::size_t spike, int reps) {
  std::vector<std::uint64_t> slots(cells);
  RunOut out;
  out.best_ns = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    pool.RunIndexed(cells, [&](std::size_t i) {
      slots[i] = SpinCell(i, CellCost(i, spike));
    });
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    out.best_ns = std::min(out.best_ns, ns);
  }
  for (const std::uint64_t v : slots) out.fold ^= v;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("runner", &argc, argv);
  const std::size_t cells = rep.quick() ? 20000 : 60000;
  const std::size_t spike = cells / 3;
  const int reps = rep.quick() ? 3 : 5;
  const std::vector<int> jobs = {1, 2, 4};

  std::int64_t units = 0;
  for (std::size_t i = 0; i < cells; ++i) units += CellCost(i, spike);

  // Serial reference fold: every config below must reproduce it exactly.
  std::uint64_t want_fold = 0;
  {
    MutexPool serial(1);
    want_fold = RunGrid(serial, cells, spike, 1).fold;
  }

  std::vector<RunOut> mutex_runs, steal_runs;
  PoolStats steal_stats;  // telemetry of the widest steal config
  for (const int j : jobs) {
    MutexPool pool(j);
    mutex_runs.push_back(RunGrid(pool, cells, spike, reps));
  }
  {
    // Only the steal-pool sweeps are profiled: the JSON throughput block
    // (and with it the perf gate's slots_per_sec) tracks the production
    // scheduler, never the comparator.
    ScopedTimer timer(rep.profile(), "sweep");
    for (const int j : jobs) {
      ThreadPool pool(j);
      steal_runs.push_back(RunGrid(pool, cells, spike, reps));
      if (j == jobs.back()) steal_stats = pool.stats();
    }
  }
  rep.CountWork(static_cast<std::int64_t>(jobs.size()) * reps * units,
                static_cast<std::int64_t>(jobs.size()) * reps *
                    static_cast<std::int64_t>(cells));

  std::int64_t mismatches = 0;
  for (const RunOut& r : mutex_runs) mismatches += r.fold != want_fold;
  for (const RunOut& r : steal_runs) mismatches += r.fold != want_fold;

  Table table({"pool", "jobs", "best ms", "ns/task", "speedup"});
  const auto dcells = static_cast<double>(cells);
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const double mutex_ns = mutex_runs[k].best_ns;
    const double steal_ns = steal_runs[k].best_ns;
    const double speedup = mutex_ns / steal_ns;
    table.AddRow({"mutex", Table::Num(jobs[k]), Table::Num(mutex_ns / 1e6, 2),
                  Table::Num(mutex_ns / dcells, 1), Table::Num(1.0, 2)});
    table.AddRow({"steal", Table::Num(jobs[k]), Table::Num(steal_ns / 1e6, 2),
                  Table::Num(steal_ns / dcells, 1), Table::Num(speedup, 2)});
    const std::string label = "jobs=" + std::to_string(jobs[k]);
    rep.RowInfo("mutex@" + label, "ns_per_task", mutex_ns / dcells);
    rep.RowInfo("steal@" + label, "ns_per_task", steal_ns / dcells);
    if (jobs[k] == 1) continue;  // both pools run the inline serial path
    if (jobs[k] == 4) {
      // The acceptance bar: chunked stealing must beat per-task locking
      // by >= 1.3x on the skewed grid, or the bench itself fails.
      rep.RowMin("steal_vs_mutex@" + label, "speedup", speedup, 1.3);
    } else {
      rep.RowInfo("steal_vs_mutex@" + label, "speedup", speedup);
    }
  }
  rep.RowMax("checksums", "mismatches", static_cast<double>(mismatches), 0.0);
  rep.RowInfo("steal@jobs=4", "chunks", static_cast<double>(steal_stats.chunks));
  rep.RowInfo("steal@jobs=4", "steals", static_cast<double>(steal_stats.steals));
  rep.RowInfo("steal@jobs=4", "failed_steals",
              static_cast<double>(steal_stats.failed_steals));
  rep.RowInfo("steal@jobs=4", "backoff_rounds",
              static_cast<double>(steal_stats.backoff_rounds));
  rep.RowInfo("steal@jobs=4", "idle_waits",
              static_cast<double>(steal_stats.idle_waits));

  std::printf("== RUNNER: work-stealing vs mutex-cursor dispatch ==\n");
  std::printf(
      "%lld cells, costs 1..4 spin units + one 1000x spike at cell %lld, "
      "best of %d reps\n\n",
      static_cast<long long>(cells), static_cast<long long>(spike), reps);
  table.PrintAscii(std::cout);
  rep.Save("runner_dispatch", table);
  std::printf(
      "\nExpected shape: at jobs=1 both pools take the identical inline "
      "serial path\n(speedup ~1). At jobs>1 the mutex pool pays two lock "
      "acquisitions per\nnear-empty task while the steal pool claims "
      "~1000-task chunks with one deque\noperation each, so its ns/task "
      "approaches the serial floor and the speedup\ngrows with contention. "
      "Checksums pin every schedule to the serial result.\n");

  return rep.Finish();
}
