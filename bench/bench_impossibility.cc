// IMPOSS — the paper's stated impossibility (Section 1.1, Remark): an
// online algorithm restricted to the SAME delay and utilization as the
// offline must make unboundedly many changes, so some slack is necessary.
//
// Demonstration: a sawtooth adversary alternates between a high plateau
// and near-silence. A no-slack tracker (delay D_O and utilization U_O
// enforced exactly, here the per-arrival allocator at delay D_O, whose
// idle allocation must drop to preserve utilization) pays ~2 changes per
// sawtooth edge — linear in the horizon — while the slack-equipped Fig. 3
// algorithm pays log-many changes per certified stage, and the offline
// change requirement per cycle stays constant. The ratio
// no-slack/offline grows with the horizon; online-with-slack/offline
// stays flat.
#include <algorithm>
#include <iostream>

#include "analysis/table.h"
#include "baseline/per_arrival.h"
#include "core/single_session.h"
#include "offline/offline_single.h"
#include "reporter.h"
#include "sim/engine_single.h"
#include "traffic/shaper.h"
#include "traffic/sources.h"

namespace {
using namespace bwalloc;

constexpr Bits kBa = 64;
constexpr Time kDa = 16;  // D_O = 8
constexpr Time kW = 16;  // 2 D_O (offline feasibility, DESIGN.md)

std::vector<Bits> Sawtooth(Time horizon) {
  SawtoothSource src(/*low=*/1, /*high=*/48, /*low_len=*/64, /*high_len=*/32);
  return src.Generate(horizon);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("imposs", &argc, argv);
  Table table({"horizon", "cycles", "no-slack chg", "online chg",
               "offline lb", "no-slack / lb", "online / lb"});

  const std::vector<Time> horizons =
      rep.quick() ? std::vector<Time>{768, 1536, 3072}
                  : std::vector<Time>{768, 1536, 3072, 6144, 12288};
  {
  ScopedTimer timer(rep.profile(), "sweep");
  for (const Time horizon : horizons) {
    const auto trace = Sawtooth(horizon);

    PerArrivalAllocator no_slack(kDa / 2);  // offline-tight delay D_O
    SingleEngineOptions opt;
    opt.drain_slots = 2 * kDa;
    const SingleRunResult rn = RunSingleSession(trace, no_slack, opt);

    SingleSessionParams p;
    p.max_bandwidth = kBa;
    p.max_delay = kDa;
    p.min_utilization = Ratio(1, 6);
    p.window = kW;
    SingleSessionOnline online(p);
    const SingleRunResult ro = RunSingleSession(trace, online, opt);

    OfflineParams off;
    off.max_bandwidth = kBa;
    off.delay = kDa / 2;
    off.utilization = Ratio(1, 2);
    off.window = kW;
    const std::int64_t lb =
        std::max<std::int64_t>(1, EnvelopeStageLowerBound(trace, off));

    table.AddRow({Table::Num(horizon), Table::Num(horizon / 96),
                  Table::Num(rn.changes), Table::Num(ro.changes),
                  Table::Num(lb),
                  Table::Num(static_cast<double>(rn.changes) /
                                 static_cast<double>(lb),
                             2),
                  Table::Num(static_cast<double>(ro.changes) /
                                 static_cast<double>(lb),
                             2)});
    const std::string label = "horizon=" + Table::Num(horizon);
    rep.RowInfo(label, "no_slack_over_lb",
                static_cast<double>(rn.changes) / static_cast<double>(lb));
    rep.RowInfo(label, "online_over_lb",
                static_cast<double>(ro.changes) / static_cast<double>(lb));
    rep.CountWork(2 * horizon, 2);
  }
  }

  std::printf("== IMPOSS: why online algorithms need slack ==\n");
  std::printf("sawtooth adversary (1 <-> 48 bits/slot), B_A=%lld, D_A=%lld, "
              "U_A=1/6, W=%lld\n\n",
              static_cast<long long>(kBa), static_cast<long long>(kDa),
              static_cast<long long>(kW));
  table.PrintAscii(std::cout);
  rep.Save("impossibility", table);
  std::printf(
      "\nExpected shape (Section 1.1 Remark): the tight-tracking no-slack "
      "policy pays\nchanges per sawtooth edge, so its column grows linearly "
      "with the horizon while\nits ratio to the offline requirement stays "
      "large; the slack-equipped Fig. 3\nalgorithm's ratio is flat and "
      "small — slack buys a bounded competitive ratio.\n");
  return rep.Finish();
}
