// Shared CLI + telemetry layer for the bench_* binaries.
//
// Every bench prints its human-readable ASCII tables exactly as before;
// the Reporter adds a machine-readable BENCH_<name>.json next to them so
// CI (and tools/bench_diff) can compare runs without parsing tables:
//
//   {"bench":"thm6","quick":false,"jobs":4,
//    "rows":[{"label":"B_A=16","metric":"chg_per_stage","measured":4,
//             "bound":7,"kind":"max","pass":true}, ...],
//    "pass":true,
//    "throughput":{"slots":N,"cells":N,"wall_ns":N,
//                  "slots_per_sec":X,"cells_per_sec":X,"ns_per_slot":X}}
//
// Rows come in three kinds: "max" (measured <= bound — the paper's upper
// bounds), "min" (measured >= bound — utilization floors), and "info"
// (no bound; bound is null and pass is true). The file-level "pass" is
// the AND of the rows, and Finish() returns it as a process exit code, so
// a bound regression fails the bench run itself.
//
// Throughput counters come from the obs::ScopedTimer profile: benches
// wrap their sweep in `ScopedTimer t(rep.profile(), "sweep")` and declare
// the work done via CountWork(slots, cells); wall_ns sums every profiled
// phase. Wall-clock is nondeterministic, so bench_diff treats throughput
// as advisory (threshold-gated), never byte-compared.
//
// The constructor strips the shared bench CLI out of argc/argv before the
// bench sees it:
//   [out_dir]    first positional arg: artifact directory (CSV + JSON)
//   --jobs=N     worker threads for sharded benches (jobs())
//   --quick      shrink grids/horizons for CI smoke runs (quick())
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "obs/stopwatch.h"

namespace bwalloc::bench {

class Reporter {
 public:
  Reporter(std::string name, int* argc, char** argv);

  int jobs() const { return jobs_; }
  bool quick() const { return quick_; }
  PhaseProfile* profile() { return &profile_; }

  // Writes `<dir>/<table_name>.csv` when an artifact directory was given
  // (same layout BenchArtifacts used); no-op otherwise.
  void Save(const std::string& table_name, const Table& table) const;

  // measured <= bound (paper upper bound).
  void RowMax(const std::string& label, const std::string& metric,
              double measured, double bound);
  // measured >= bound (utilization floor).
  void RowMin(const std::string& label, const std::string& metric,
              double measured, double bound);
  // Unbounded observation: bound is null, pass is true.
  void RowInfo(const std::string& label, const std::string& metric,
               double measured);

  // Accumulates the work the profiled phases covered.
  void CountWork(std::int64_t slots, std::int64_t cells);

  bool pass() const;
  // Writes BENCH_<name>.json (into the artifact directory when given,
  // the working directory otherwise) and returns the bench exit code:
  // 0 when every bounded row passed, 1 otherwise.
  int Finish() const;

  std::string ToJson() const;

 private:
  struct Row {
    std::string label;
    std::string metric;
    std::string kind;  // "max" | "min" | "info"
    double measured = 0;
    std::optional<double> bound;
    bool pass = true;
  };

  std::string name_;
  std::string dir_;
  int jobs_ = 0;
  bool quick_ = false;
  std::vector<Row> rows_;
  std::int64_t slots_ = 0;
  std::int64_t cells_ = 0;
  PhaseProfile profile_;
};

}  // namespace bwalloc::bench
