// MICRO — data-structure and engine throughput microbenchmarks
// (google-benchmark): the O(log n) hull envelope versus the naive scan,
// queue operations, and end-to-end simulator slot rates.
//
// A custom main (replacing BENCHMARK_MAIN) mirrors every measured run
// into BENCH_micro.json through bench::Reporter: ns/iteration and
// items/sec per benchmark, as info rows — microbenchmark timings are
// machine-dependent, so bench_diff gates them by threshold, never
// pass/fail here.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/single_session.h"
#include "offline/offline_single.h"
#include "reporter.h"
#include "sim/bit_queue.h"
#include "sim/engine_single.h"
#include "traffic/workload_suite.h"
#include "util/envelope.h"
#include "util/rng.h"

namespace {
using namespace bwalloc;

void BM_EnvelopeHullAppendQuery(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  std::vector<Bits> increments;
  for (std::int64_t i = 0; i < n; ++i) {
    increments.push_back(rng.Bernoulli(0.2) ? rng.UniformInt(0, 200) : 0);
  }
  for (auto _ : state) {
    MaxSlopeEnvelope env;
    std::int64_t y = 0;
    Ratio out(0, 1);
    for (std::int64_t x = 0; x < n; ++x) {
      env.Append(x, y);
      out = env.MaxSlopeTo(x + 8, y);
      y += increments[static_cast<std::size_t>(x)];
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EnvelopeHullAppendQuery)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_EnvelopeNaiveAppendQuery(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  std::vector<Bits> increments;
  for (std::int64_t i = 0; i < n; ++i) {
    increments.push_back(rng.Bernoulli(0.2) ? rng.UniformInt(0, 200) : 0);
  }
  for (auto _ : state) {
    std::vector<EnvelopePoint> pts;
    std::int64_t y = 0;
    Ratio out(0, 1);
    for (std::int64_t x = 0; x < n; ++x) {
      pts.push_back({x, y});
      out = NaiveMaxSlope(pts, x + 8, y);
      y += increments[static_cast<std::size_t>(x)];
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EnvelopeNaiveAppendQuery)->Arg(1024)->Arg(4096);

void BM_BitQueueEnqueueServe(benchmark::State& state) {
  const Bandwidth bw = Bandwidth::FromDouble(6.5);
  for (auto _ : state) {
    BitQueue q;
    DelayHistogram hist;
    Bits out = 0;
    for (Time t = 0; t < 4096; ++t) {
      q.Enqueue(t, (t * 13) % 17);
      out += q.ServeSlot(t, bw, &hist);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_BitQueueEnqueueServe);

void BM_SingleSessionEngineSlots(benchmark::State& state) {
  SingleSessionParams p;
  p.max_bandwidth = 256;
  p.max_delay = 16;
  p.min_utilization = Ratio(1, 6);
  p.window = 8;
  const auto trace = SingleSessionWorkload("mixed", 256, 8, 16384, 7);
  for (auto _ : state) {
    SingleSessionOnline alg(p);
    const SingleRunResult r = RunSingleSession(trace, alg);
    benchmark::DoNotOptimize(r.changes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_SingleSessionEngineSlots);

void BM_OfflineGreedySchedule(benchmark::State& state) {
  const auto trace = SingleSessionWorkload("onoff", 64, 8, 4096, 9);
  OfflineParams off;
  off.max_bandwidth = 64;
  off.delay = 8;
  off.utilization = Ratio(1, 2);
  off.window = 8;
  for (auto _ : state) {
    const OfflineSchedule s = GreedyMinChangeSchedule(trace, off);
    benchmark::DoNotOptimize(s.feasible);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_OfflineGreedySchedule);

// Console reporter that also mirrors each measured run into the
// machine-readable Reporter.
class CaptureReporter final : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(bench::Reporter* rep) : rep_(rep) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      rep_->RowInfo(name, "ns_per_iter", run.GetAdjustedRealTime());
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        rep_->RowInfo(name, "items_per_sec", it->second.value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  bench::Reporter* rep_;
};

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("micro", &argc, argv);
  std::vector<char*> args(argv, argv + argc);
  std::string min_time = "--benchmark_min_time=0.05";
  if (rep.quick()) args.push_back(min_time.data());
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());

  CaptureReporter reporter(&rep);
  {
    ScopedTimer timer(rep.profile(), "benchmarks");
    benchmark::RunSpecifiedBenchmarks(&reporter);
  }
  benchmark::Shutdown();
  return rep.Finish();
}
