// MICRO — data-structure and engine throughput microbenchmarks
// (google-benchmark): the O(log n) hull envelope versus the naive scan,
// queue operations, and end-to-end simulator slot rates.
#include <benchmark/benchmark.h>

#include "core/single_session.h"
#include "offline/offline_single.h"
#include "sim/bit_queue.h"
#include "sim/engine_single.h"
#include "traffic/workload_suite.h"
#include "util/envelope.h"
#include "util/rng.h"

namespace {
using namespace bwalloc;

void BM_EnvelopeHullAppendQuery(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  std::vector<Bits> increments;
  for (std::int64_t i = 0; i < n; ++i) {
    increments.push_back(rng.Bernoulli(0.2) ? rng.UniformInt(0, 200) : 0);
  }
  for (auto _ : state) {
    MaxSlopeEnvelope env;
    std::int64_t y = 0;
    Ratio out(0, 1);
    for (std::int64_t x = 0; x < n; ++x) {
      env.Append(x, y);
      out = env.MaxSlopeTo(x + 8, y);
      y += increments[static_cast<std::size_t>(x)];
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EnvelopeHullAppendQuery)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_EnvelopeNaiveAppendQuery(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  Rng rng(1);
  std::vector<Bits> increments;
  for (std::int64_t i = 0; i < n; ++i) {
    increments.push_back(rng.Bernoulli(0.2) ? rng.UniformInt(0, 200) : 0);
  }
  for (auto _ : state) {
    std::vector<EnvelopePoint> pts;
    std::int64_t y = 0;
    Ratio out(0, 1);
    for (std::int64_t x = 0; x < n; ++x) {
      pts.push_back({x, y});
      out = NaiveMaxSlope(pts, x + 8, y);
      y += increments[static_cast<std::size_t>(x)];
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EnvelopeNaiveAppendQuery)->Arg(1024)->Arg(4096);

void BM_BitQueueEnqueueServe(benchmark::State& state) {
  const Bandwidth bw = Bandwidth::FromDouble(6.5);
  for (auto _ : state) {
    BitQueue q;
    DelayHistogram hist;
    Bits out = 0;
    for (Time t = 0; t < 4096; ++t) {
      q.Enqueue(t, (t * 13) % 17);
      out += q.ServeSlot(t, bw, &hist);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_BitQueueEnqueueServe);

void BM_SingleSessionEngineSlots(benchmark::State& state) {
  SingleSessionParams p;
  p.max_bandwidth = 256;
  p.max_delay = 16;
  p.min_utilization = Ratio(1, 6);
  p.window = 8;
  const auto trace = SingleSessionWorkload("mixed", 256, 8, 16384, 7);
  for (auto _ : state) {
    SingleSessionOnline alg(p);
    const SingleRunResult r = RunSingleSession(trace, alg);
    benchmark::DoNotOptimize(r.changes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_SingleSessionEngineSlots);

void BM_OfflineGreedySchedule(benchmark::State& state) {
  const auto trace = SingleSessionWorkload("onoff", 64, 8, 4096, 9);
  OfflineParams off;
  off.max_bandwidth = 64;
  off.delay = 8;
  off.utilization = Ratio(1, 2);
  off.window = 8;
  for (auto _ : state) {
    const OfflineSchedule s = GreedyMinChangeSchedule(trace, off);
    benchmark::DoNotOptimize(s.feasible);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_OfflineGreedySchedule);

}  // namespace

BENCHMARK_MAIN();
