# bench-perf gate: run one bench in --quick mode and diff its telemetry
# against the committed baseline tree. Fails on any bounded row flipping
# pass -> fail or on throughput.slots_per_sec dropping more than
# MAX_SLOWDOWN below the baseline (--ns-slack=0: ns_per_slot stays
# advisory; slots_per_sec is the one gated throughput number).
#
#   cmake -DEXE=path/to/bench_x -DDIFF=path/to/bench_diff
#         -DBASELINE=bench/baselines/bench_x -DOUT_DIR=work/dir
#         -DMAX_SLOWDOWN=0.10 -P perf_gate.cmake
if(NOT DEFINED EXE OR NOT DEFINED DIFF OR NOT DEFINED BASELINE
   OR NOT DEFINED OUT_DIR)
  message(FATAL_ERROR
    "perf_gate.cmake: EXE, DIFF, BASELINE, OUT_DIR required")
endif()
if(NOT DEFINED MAX_SLOWDOWN)
  set(MAX_SLOWDOWN 0.10)
endif()
if(NOT EXISTS "${BASELINE}")
  message(FATAL_ERROR
    "perf_gate.cmake: no committed baseline at ${BASELINE}; "
    "see bench/baselines/README.md for the regeneration recipe")
endif()
file(REMOVE_RECURSE "${OUT_DIR}")
file(MAKE_DIRECTORY "${OUT_DIR}")

execute_process(
  COMMAND "${EXE}" "${OUT_DIR}" --quick
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR "bench --quick failed (${exit_code})\n${out}\n${err}")
endif()

execute_process(
  COMMAND "${DIFF}" "${BASELINE}" "${OUT_DIR}"
          --ns-slack=0 "--max-slowdown=${MAX_SLOWDOWN}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
    "bench_diff vs committed baseline failed (${exit_code})\n${out}\n${err}")
endif()
