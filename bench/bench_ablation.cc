// ABL — ablations for the design choices DESIGN.md calls out.
//
//  A. Power-of-two quantization (Fig. 3's "smallest power of two >= low")
//     versus tracking low(t) exactly: quantization is what caps changes at
//     log2(B_A) per stage; exact tracking re-negotiates on every envelope
//     move.
//  B. Utilization-window size W: larger windows end stages later (fewer
//     certified stages, fewer changes) but loosen the local-utilization
//     guarantee's granularity.
//  C. Service discipline for the multi-session algorithm: two conceptual
//     channels versus the Remark's FIFO-combined service (same worst-case
//     delay bound, better mean delay).
#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "analysis/table.h"
#include "core/high_tracker.h"
#include "core/low_tracker.h"
#include "core/multi_phased.h"
#include "core/single_session.h"
#include "reporter.h"
#include "sim/engine_multi.h"
#include "sim/engine_single.h"
#include "traffic/workload_suite.h"

namespace {
using namespace bwalloc;

// Fig. 3 with the quantization removed: B_on = ceil(low(t)) exactly.
class ExactLevelAllocator final : public SingleSessionAllocator {
 public:
  explicit ExactLevelAllocator(const SingleSessionParams& params)
      : params_(params),
        low_(params.offline_delay()),
        high_(params.window, params.offline_utilization(),
              params.max_bandwidth) {
    params_.Validate();
  }

  Bandwidth OnSlot(Time now, Bits arrivals, Bits queue) override {
    if (!started_) {
      started_ = true;
      state_stage_ = true;
      low_.StartStage(now);
      high_.StartStage(now);
      level_ = Bandwidth::Zero();
    }
    if (!state_stage_) {
      return queue > 0 ? Bandwidth::FromBitsPerSlot(params_.max_bandwidth)
                       : Bandwidth::Zero();
    }
    const Ratio low = low_.LowAt(now);
    high_.RecordArrivals(now, arrivals);
    const Ratio high = high_.HighAt();
    low_.RecordArrivals(arrivals);
    if (high < low || Ratio(params_.max_bandwidth, 1) < low) {
      ++stages_;
      state_stage_ = false;
      return queue > 0 ? Bandwidth::FromBitsPerSlot(params_.max_bandwidth)
                       : Bandwidth::Zero();
    }
    if (!low.is_zero() && level_ < low) {
      // ceil(low) in fixed point: the un-quantized ladder.
      const Int128 raw = (static_cast<Int128>(low.num())
                          << Bandwidth::kShift) +
                         low.den() - 1;
      level_ =
          Bandwidth::FromRaw(static_cast<std::int64_t>(raw / low.den()));
    }
    return level_;
  }

  void OnServed(Time now, Bits /*served*/, Bits queue_after) override {
    if (!state_stage_ && queue_after == 0) {
      state_stage_ = true;
      low_.StartStage(now + 1);
      high_.StartStage(now + 1);
      level_ = Bandwidth::Zero();
    }
  }

  std::int64_t stages() const override { return stages_; }

 private:
  SingleSessionParams params_;
  LowTracker low_;
  HighTracker high_;
  bool started_ = false;
  bool state_stage_ = false;
  Bandwidth level_;
  std::int64_t stages_ = 0;
};

constexpr Bits kBa = 256;
constexpr Time kDa = 16;
constexpr Time kHorizon = 8000;

SingleSessionParams ParamsWithW(Time w) {
  SingleSessionParams p;
  p.max_bandwidth = kBa;
  p.max_delay = kDa;
  p.min_utilization = Ratio(1, 6);
  p.window = w;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("abl", &argc, argv);
  const Time horizon = rep.quick() ? 2000 : kHorizon;
  const auto trace =
      SingleSessionWorkload("mixed", kBa, kDa / 2, horizon, 404);
  SingleEngineOptions opt;
  opt.drain_slots = 2 * kDa;
  opt.utilization_scan_window = 8 + 5 * (kDa / 2);

  std::printf("== ABL-A: power-of-two quantization vs exact tracking ==\n\n");
  {
    ScopedTimer timer(rep.profile(), "ablA");
    Table table({"ladder", "changes", "stages", "max delay",
                 "global util"});
    {
      SingleSessionOnline alg(ParamsWithW(8));
      const SingleRunResult r = RunSingleSession(trace, alg, opt);
      table.AddRow({"powers of two (Fig.3)", Table::Num(r.changes),
                    Table::Num(r.stages), Table::Num(r.delay.max_delay()),
                    Table::Num(r.global_utilization, 3)});
      // Only the quantized ladder carries the Claim 2 delay guarantee.
      rep.RowMax("powers_of_two", "max_delay",
                 static_cast<double>(r.delay.max_delay()),
                 static_cast<double>(kDa));
      rep.RowInfo("powers_of_two", "changes",
                  static_cast<double>(r.changes));
    }
    {
      ExactLevelAllocator alg(ParamsWithW(8));
      const SingleRunResult r = RunSingleSession(trace, alg, opt);
      table.AddRow({"exact ceil(low)", Table::Num(r.changes),
                    Table::Num(r.stages), Table::Num(r.delay.max_delay()),
                    Table::Num(r.global_utilization, 3)});
      rep.RowInfo("exact_ceil_low", "max_delay",
                  static_cast<double>(r.delay.max_delay()));
      rep.RowInfo("exact_ceil_low", "changes",
                  static_cast<double>(r.changes));
    }
    rep.CountWork(2 * horizon, 2);
    table.PrintAscii(std::cout);
    std::printf(
        "\nQuantization is load-bearing twice over: the exact ladder "
        "re-negotiates on\nevery envelope move, AND it loses the delay "
        "guarantee — Claim 2's induction\nneeds the geometric level "
        "structure (each level at least doubles), so exact\ntracking can "
        "exceed D_A.\n\n");
  }

  std::printf("== ABL-B: utilization window W ==\n\n");
  {
    ScopedTimer timer(rep.profile(), "ablB");
    Table table({"W", "changes", "stages", "max delay", "local util",
                 "global util"});
    for (const Time w : {Time{8}, Time{16}, Time{32}, Time{64}}) {
      SingleSessionOnline alg(ParamsWithW(w));
      SingleEngineOptions wopt = opt;
      wopt.utilization_scan_window = w + 5 * (kDa / 2);
      const SingleRunResult r = RunSingleSession(trace, alg, wopt);
      table.AddRow({Table::Num(w), Table::Num(r.changes),
                    Table::Num(r.stages), Table::Num(r.delay.max_delay()),
                    Table::Num(r.worst_best_window_utilization, 3),
                    Table::Num(r.global_utilization, 3)});
      const std::string label = "W=" + Table::Num(w);
      rep.RowMax(label, "max_delay",
                 static_cast<double>(r.delay.max_delay()),
                 static_cast<double>(kDa));
      rep.RowInfo(label, "changes", static_cast<double>(r.changes));
      rep.CountWork(horizon, 1);
    }
    table.PrintAscii(std::cout);
    std::printf("\nLarger W certifies fewer stages (the running minimum "
                "forgives short lulls), trading\nchange count against "
                "utilization granularity — the paper's 'W should not be "
                "too large'.\n\n");
  }

  std::printf("== ABL-C: two-channel vs FIFO-combined service (Remark) "
              "==\n\n");
  {
    ScopedTimer timer(rep.profile(), "ablC");
    Table table({"discipline", "max delay", "mean delay", "p99 delay",
                 "local changes"});
    const std::int64_t k = 8;
    const auto traces = MultiSessionWorkload(
        MultiWorkloadKind::kRotatingHotspot, k, 16 * k, 8, horizon, 405);
    std::int64_t changes[2] = {0, 0};
    for (const bool fifo : {false, true}) {
      MultiSessionParams p;
      p.sessions = k;
      p.offline_bandwidth = 16 * k;
      p.offline_delay = 8;
      PhasedMulti sys(p, fifo ? ServiceDiscipline::kFifoCombined
                              : ServiceDiscipline::kTwoChannel);
      MultiEngineOptions mopt;
      mopt.drain_slots = 32;
      const MultiRunResult r = RunMultiSession(traces, sys, mopt);
      table.AddRow({fifo ? "fifo-combined" : "two-channel",
                    Table::Num(r.delay.max_delay()),
                    Table::Num(r.delay.MeanDelay(), 2),
                    Table::Num(r.delay.Percentile(0.99)),
                    Table::Num(r.local_changes)});
      const std::string label = fifo ? "fifo_combined" : "two_channel";
      // Both disciplines keep the Remark's 2 D_O worst-case bound.
      rep.RowMax(label, "max_delay",
                 static_cast<double>(r.delay.max_delay()), 16.0);
      rep.RowInfo(label, "mean_delay", r.delay.MeanDelay());
      changes[fifo ? 1 : 0] = r.local_changes;
      rep.CountWork(horizon, 1);
    }
    // The Remark: the service discipline never alters allocation decisions.
    rep.RowMax("disciplines", "local_changes_diff",
               static_cast<double>(std::abs(changes[1] - changes[0])), 0.0);
    table.PrintAscii(std::cout);
    std::printf("\nFIFO keeps the worst-case bound (the Remark) and "
                "improves typical delay;\nallocation decisions — and hence "
                "change counts — are identical.\n");
  }
  return rep.Finish();
}
