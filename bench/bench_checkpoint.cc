// CHECKPOINT — crash-tolerance overhead: what a full-state snapshot costs
// as a function of the checkpoint interval.
//
// One rotating-hotspot multi-session cell (k=4, B_O=64, D_O=8) runs with
// in-memory checkpoint capture at intervals {off, 512, 128, 32} on the
// naive engine, {off, 128} on the event engine, plus one on-disk cell
// (atomic temp+rename to a real file every 128 slots). Reported per
// config: ns/slot, the overhead percentage against the checkpoint-free
// run of the same engine, and the serialized blob size. Wall-clock rows
// are informational (bench_diff gates throughput only under
// --max-slowdown); the deterministic rows pin the blob size under a hard
// cap and the final checkpoint's resume slot to exactly the last interval
// boundary — a drifting cadence or a ballooning snapshot fails the bench
// itself.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/table.h"
#include "core/multi_phased.h"
#include "reporter.h"
#include "sim/engine_multi.h"
#include "state/checkpoint.h"
#include "traffic/workload_suite.h"

namespace {
using namespace bwalloc;

constexpr std::int64_t kSessions = 4;
constexpr Bits kBo = 64;
constexpr Time kDo = 8;

struct Config {
  const char* label;
  Time every;  // 0 = checkpointing off
  bool event;  // event-driven engine instead of the naive slot loop
  bool disk;   // publish to a real file, not just the capture buffer
};

struct CellOut {
  double ns_per_slot = 0;
  std::size_t blob_bytes = 0;
  Time last_resume_slot = 0;  // meta.next_slot of the final checkpoint
};

CellOut RunCell(const Config& cfg, Time horizon,
                const std::filesystem::path& disk_dir) {
  const auto traces = MultiSessionWorkload(MultiWorkloadKind::kRotatingHotspot,
                                           kSessions, kBo, kDo, horizon, 42);

  MultiSessionParams p;
  p.sessions = kSessions;
  p.offline_bandwidth = kBo;
  p.offline_delay = kDo;
  PhasedMulti sys(p);

  MultiEngineOptions opt;
  opt.drain_slots = 8 * kDo;
  std::string blob;
  if (cfg.every > 0) {
    opt.checkpoint.every = cfg.every;
    opt.checkpoint.capture = &blob;
    if (cfg.disk) {
      opt.checkpoint.dir = disk_dir.string();
      opt.checkpoint.stem = "bench";
    }
  }

  const auto start = std::chrono::steady_clock::now();
  if (cfg.event) {
    const SparseMultiTrace sparse = SparseMultiTrace::FromDense(traces);
    (void)RunMultiSessionEvent(sparse, sys, opt);
  } else {
    (void)RunMultiSession(traces, sys, opt);
  }
  const double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count();

  CellOut out;
  out.ns_per_slot = ns / static_cast<double>(horizon);
  out.blob_bytes = blob.size();
  if (cfg.every > 0) {
    out.last_resume_slot = ReadCheckpointMeta(blob, cfg.label).next_slot;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("checkpoint", &argc, argv);
  const Time horizon = rep.quick() ? 4000 : 20000;
  const std::filesystem::path disk_dir =
      std::filesystem::temp_directory_path() / "bwalloc_bench_checkpoint";
  std::filesystem::create_directories(disk_dir);

  const std::vector<Config> configs = {
      {"naive,off", 0, false, false},   {"naive,512", 512, false, false},
      {"naive,128", 128, false, false}, {"naive,32", 32, false, false},
      {"naive,128,disk", 128, false, true},
      {"event,off", 0, true, false},    {"event,128", 128, true, false},
  };

  std::vector<CellOut> cells;
  {
    ScopedTimer timer(rep.profile(), "sweep");
    for (const Config& c : configs) {
      cells.push_back(RunCell(c, horizon, disk_dir));
    }
  }
  rep.CountWork(static_cast<std::int64_t>(configs.size()) * horizon,
                static_cast<std::int64_t>(configs.size()));

  // Checkpoint-free reference per engine, for the overhead column.
  double base[2] = {0, 0};
  for (std::size_t i = 0; i < configs.size(); ++i) {
    if (configs[i].every == 0) base[configs[i].event ? 1 : 0] =
        cells[i].ns_per_slot;
  }

  Table table({"config", "every", "ns/slot", "overhead %", "blob KiB",
               "last ckpt slot"});
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
    const CellOut& o = cells[i];
    const double ref = base[c.event ? 1 : 0];
    const double overhead =
        c.every > 0 && ref > 0 ? 100.0 * (o.ns_per_slot / ref - 1.0) : 0.0;
    const double blob_kib = static_cast<double>(o.blob_bytes) / 1024.0;
    table.AddRow({c.label, Table::Num(c.every), Table::Num(o.ns_per_slot, 1),
                  Table::Num(overhead, 1), Table::Num(blob_kib, 2),
                  Table::Num(o.last_resume_slot)});
    rep.RowInfo(c.label, "ns_per_slot", o.ns_per_slot);
    if (c.every == 0) continue;
    rep.RowInfo(c.label, "overhead_pct", overhead);
    // Deterministic guards: a k=4 snapshot (channels, stage machinery,
    // counters, meters) must stay small, and the rolling checkpoint's
    // resume slot must land on the last interval boundary exactly.
    rep.RowMax(c.label, "blob_kib", blob_kib, 256.0);
    // The engines keep checkpointing through the drain tail, so the last
    // boundary is relative to horizon + drain_slots.
    const Time total_slots = horizon + 8 * kDo;
    const double expect_slot =
        static_cast<double>((total_slots / c.every) * c.every);
    rep.RowMax(c.label, "last_ckpt_slot",
               static_cast<double>(o.last_resume_slot), expect_slot);
    rep.RowMin(c.label, "last_ckpt_slot_floor",
               static_cast<double>(o.last_resume_slot), expect_slot);
  }

  std::printf("== CHECKPOINT: snapshot overhead vs interval ==\n");
  std::printf("rotating-hotspot, k=%lld, B_O=%lld, D_O=%lld, %lld slots\n\n",
              static_cast<long long>(kSessions), static_cast<long long>(kBo),
              static_cast<long long>(kDo), static_cast<long long>(horizon));
  table.PrintAscii(std::cout);
  rep.Save("checkpoint_overhead", table);
  std::printf(
      "\nExpected shape: overhead is proportional to 1/every (each snapshot "
      "serializes\nthe same ~60 KiB of state, so halving the interval "
      "doubles the cost); the disk\ncell adds the temp+rename publish on "
      "top of serialization. Blob size is\ninterval-independent: state, "
      "not history.\n");

  std::error_code ec;
  std::filesystem::remove_all(disk_dir, ec);
  return rep.Finish();
}
