// FIG1 — Figure 1 reproduction: "An example of bandwidth demand."
//
// The paper motivates dynamic allocation with a sketch of bursty,
// unpredictable per-session demand. This bench characterizes every traffic
// source in the workload suite (each shaped to the feasibility envelope of
// B_O = 64 bits/slot, D_O = 8 slots) and renders a Figure-1-style ASCII
// demand curve for the bursty ones.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <numeric>

#include "analysis/table.h"
#include "reporter.h"
#include "traffic/workload_suite.h"

namespace {

using namespace bwalloc;

constexpr Bits kBo = 64;
constexpr Time kDo = 8;
constexpr Time kHorizon = 8000;
constexpr std::uint64_t kSeed = 1998;  // PODC '98

double Mean(const std::vector<Bits>& t) {
  return static_cast<double>(std::accumulate(t.begin(), t.end(), Bits{0})) /
         static_cast<double>(t.size());
}

double Autocorr1(const std::vector<Bits>& t) {
  const double mean = Mean(t);
  double num = 0;
  double den = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const double d = static_cast<double>(t[i]) - mean;
    den += d * d;
    if (i + 1 < t.size()) {
      num += d * (static_cast<double>(t[i + 1]) - mean);
    }
  }
  return den == 0 ? 0.0 : num / den;
}

void Sparkline(const std::string& name, const std::vector<Bits>& trace,
               Time from, Time len) {
  // 8-level ASCII demand curve over `len` slots, bucketed by 4.
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  Bits peak = 1;
  std::vector<Bits> buckets;
  for (Time t = from; t < from + len; t += 4) {
    Bits sum = 0;
    for (Time u = t; u < t + 4 && u < from + len; ++u) {
      sum += trace[static_cast<std::size_t>(u)];
    }
    buckets.push_back(sum);
    peak = std::max(peak, sum);
  }
  std::printf("%-9s |", name.c_str());
  for (const Bits b : buckets) {
    const auto lvl = static_cast<std::size_t>((b * 7) / peak);
    std::printf("%s", kLevels[lvl]);
  }
  std::printf("|  (4-slot buckets, peak %lld bits)\n",
              static_cast<long long>(peak));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Reporter rep("fig1", &argc, argv);
  const Time horizon = rep.quick() ? 2000 : kHorizon;
  std::printf("== FIG1: bandwidth demand characterization ==\n");
  std::printf("sources shaped to the (B_O=%lld, D_O=%lld) feasibility "
              "envelope; horizon %lld slots, seed %llu\n\n",
              static_cast<long long>(kBo), static_cast<long long>(kDo),
              static_cast<long long>(horizon),
              static_cast<unsigned long long>(kSeed));

  Table table({"workload", "mean b/slot", "peak b/slot", "peak/mean",
               "active slots %", "autocorr(1)"});
  std::vector<NamedTrace> suite;
  {
    ScopedTimer timer(rep.profile(), "sweep");
    suite = SingleSessionSuite(kBo, kDo, horizon, kSeed);
  }
  for (const NamedTrace& w : suite) {
    const double mean = Mean(w.trace);
    const Bits peak = *std::max_element(w.trace.begin(), w.trace.end());
    const auto active = std::count_if(w.trace.begin(), w.trace.end(),
                                      [](Bits b) { return b > 0; });
    table.AddRow({w.name, Table::Num(mean, 2),
                  Table::Num(static_cast<std::int64_t>(peak)),
                  Table::Num(static_cast<double>(peak) / std::max(mean, 1e-9),
                             2),
                  Table::Num(100.0 * static_cast<double>(active) /
                                 static_cast<double>(w.trace.size()),
                             1),
                  Table::Num(Autocorr1(w.trace), 3)});
    // Every source is shaped to the (B_O, D_O) feasibility envelope, so
    // no slot may carry more than one offline window's worth of bits.
    rep.RowMax(w.name, "peak_bits_per_slot", static_cast<double>(peak),
               static_cast<double>(kBo * kDo));
    rep.RowInfo(w.name, "peak_over_mean",
                static_cast<double>(peak) / std::max(mean, 1e-9));
    rep.CountWork(static_cast<std::int64_t>(w.trace.size()), 1);
  }
  rep.Save("fig1_demand", table);
  table.PrintAscii(std::cout);

  std::printf("\nFigure-1-style demand curves (slots 0..1023):\n\n");
  for (const NamedTrace& w : suite) {
    if (w.name == "cbr") continue;  // flat by construction
    Sparkline(w.name, w.trace, 0, 1024);
  }
  std::printf(
      "\nReading: constant-rate reservation is hopeless for every source "
      "but cbr —\nexactly the paper's Figure 1 argument for dynamic "
      "allocation.\n");
  return rep.Finish();
}
